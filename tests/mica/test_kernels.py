"""Kernel/reference equivalence for the vectorized MICA meters.

The grouped-scan PPM kernel and the fused ILP depth kernel must be
*bit-identical* to the retained sequential reference implementations on
arbitrary traces — that is the contract that keeps the kernel choice out
of every cache key.  Hypothesis drives randomized traces through both
paths; a few directed cases pin the edge conditions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass
from repro.mica import (
    REFERENCE_METERS_ENV,
    IntervalProfile,
    match_producers,
    measure_ilp,
    measure_ilp_kernel,
    measure_ilp_reference,
    measure_ppm,
    measure_ppm_kernel,
    measure_ppm_reference,
    producer_indices_reference,
)
from tests.conftest import make_trace
from tests.mica.test_properties import random_traces

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def branch_streams(draw, max_len=300):
    """A correlated (pcs, outcomes) conditional-branch stream.

    A small static-branch pool with per-branch bias produces the history
    collisions and mixed-counter states that exercise every PPM path.
    """
    n = draw(st.integers(0, max_len))
    n_static = draw(st.integers(1, 12))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    pcs = rng.integers(0, n_static, n).astype(np.int64) * 4 + 0x1000
    bias = rng.random(n_static)
    outcomes = rng.random(n) < bias[(pcs - 0x1000) // 4]
    return pcs, outcomes


@settings(**SETTINGS)
@given(branch_streams())
def test_ppm_kernel_matches_reference(stream):
    pcs, outcomes = stream
    ref = measure_ppm_reference(pcs, outcomes)
    new = measure_ppm_kernel(pcs, outcomes)
    assert set(ref) == set(new)
    for name in ref:
        assert ref[name] == new[name], name


@settings(**SETTINGS)
@given(random_traces())
def test_ilp_kernel_matches_reference(trace):
    ref = measure_ilp_reference(trace, sample_instructions=200)
    new = measure_ilp_kernel(trace, sample_instructions=200)
    assert set(ref) == set(new)
    for name in ref:
        assert new[name] == pytest.approx(ref[name], abs=1e-12), name


@settings(**SETTINGS)
@given(random_traces())
def test_ilp_kernel_with_profile_matches_reference(trace):
    profile = IntervalProfile.from_trace(trace)
    ref = measure_ilp_reference(trace, sample_instructions=150)
    new = measure_ilp_kernel(trace, sample_instructions=150, profile=profile)
    for name in ref:
        assert new[name] == pytest.approx(ref[name], abs=1e-12), name


@settings(**SETTINGS)
@given(random_traces())
def test_batched_producers_match_reference(trace):
    ref1, ref2 = producer_indices_reference(trace)
    new1, new2 = match_producers(trace)
    assert np.array_equal(ref1, new1)
    assert np.array_equal(ref2, new2)


@settings(**SETTINGS)
@given(random_traces(min_len=10))
def test_producer_prefix_property(trace):
    # Producers of a prefix are a prefix of the producers: this is what
    # lets one full-interval matching serve the ILP subsample.
    m = len(trace) // 2
    full1, full2 = match_producers(trace)
    pre1, pre2 = match_producers(trace.slice(0, m))
    assert np.array_equal(full1[:m], pre1)
    assert np.array_equal(full2[:m], pre2)


def test_ppm_empty_stream():
    empty = np.empty(0, dtype=np.int64)
    ref = measure_ppm_reference(empty, empty.astype(bool))
    new = measure_ppm_kernel(empty, empty.astype(bool))
    assert ref == new
    assert all(v == 0.0 for v in new.values())


def test_ppm_single_branch():
    pcs = np.array([0x4000], dtype=np.int64)
    outcomes = np.array([True])
    assert measure_ppm_kernel(pcs, outcomes) == measure_ppm_reference(pcs, outcomes)


def test_ppm_length_mismatch_raises():
    with pytest.raises(ValueError):
        measure_ppm_kernel(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))
    with pytest.raises(ValueError):
        measure_ppm_reference(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))


def test_reference_flag_routes_dispatch(monkeypatch):
    calls = []

    def spy_ref(pcs, outcomes):
        calls.append("reference")
        return measure_ppm_reference(pcs, outcomes)

    monkeypatch.setattr("repro.mica.ppm.measure_ppm_reference", spy_ref)
    pcs = np.array([0, 0, 4, 4], dtype=np.int64)
    outcomes = np.array([True, False, True, True])
    monkeypatch.setenv(REFERENCE_METERS_ENV, "1")
    flagged = measure_ppm(pcs, outcomes)
    assert calls == ["reference"]
    monkeypatch.delenv(REFERENCE_METERS_ENV)
    unflagged = measure_ppm(pcs, outcomes)
    assert calls == ["reference"]  # kernel path did not re-enter the spy
    assert flagged == unflagged


def test_reference_flag_routes_ilp(monkeypatch):
    trace = make_trace(
        [
            (OpClass.IADD, 1, 2, 3),
            (OpClass.IADD, 3, 1, 4),
            (OpClass.IMUL, 4, 3, 5),
            (OpClass.IADD, 5, 5, 1),
        ]
    )
    monkeypatch.setenv(REFERENCE_METERS_ENV, "1")
    flagged = measure_ilp(trace, sample_instructions=4)
    monkeypatch.delenv(REFERENCE_METERS_ENV)
    unflagged = measure_ilp(trace, sample_instructions=4)
    assert flagged == unflagged
