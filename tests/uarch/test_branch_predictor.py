"""Tests for the hardware branch predictors."""

import numpy as np
import pytest

from repro.uarch import BimodalPredictor, GSharePredictor


def constant_stream(n, taken=True, pc=0x400):
    return np.full(n, pc, dtype=np.int64), np.full(n, taken, dtype=bool)


def test_bimodal_learns_constant_branch():
    p = BimodalPredictor()
    pcs, outs = constant_stream(100)
    misses = p.predict_many(pcs, outs)
    # Initial weakly-not-taken counters cost a couple of misses.
    assert misses <= 2
    assert p.miss_rate <= 0.02


def test_bimodal_alternating_branch_is_hard():
    p = BimodalPredictor()
    pcs = np.full(200, 0x400, dtype=np.int64)
    outs = np.tile([True, False], 100)
    p.predict_many(pcs, outs)
    # 2-bit counters cannot learn alternation.
    assert p.miss_rate > 0.4


def test_gshare_learns_alternating_branch():
    p = GSharePredictor()
    pcs = np.full(400, 0x400, dtype=np.int64)
    outs = np.tile([True, False], 200)
    p.predict_many(pcs, outs)
    # History-indexed counters learn the period-2 pattern.
    assert p.miss_rate < 0.1


def test_gshare_learns_longer_pattern():
    p = GSharePredictor()
    pcs = np.full(600, 0x400, dtype=np.int64)
    outs = np.tile([True, True, False], 200)
    p.predict_many(pcs, outs)
    assert p.miss_rate < 0.1


def test_predictors_struggle_on_random():
    rng = np.random.default_rng(5)
    pcs = np.full(2000, 0x400, dtype=np.int64)
    outs = rng.random(2000) < 0.5
    for p in (BimodalPredictor(), GSharePredictor()):
        p.predict_many(pcs, outs)
        assert p.miss_rate > 0.35


def test_bimodal_separates_static_branches():
    p = BimodalPredictor()
    pcs = np.tile([0x400, 0x800], 100).astype(np.int64)
    outs = np.tile([True, False], 100)
    p.predict_many(pcs, outs)
    # Different table entries: both constant branches are learned.
    assert p.miss_rate < 0.05


def test_table_bits_validation():
    with pytest.raises(ValueError):
        BimodalPredictor(table_bits=0)
    with pytest.raises(ValueError):
        GSharePredictor(history_bits=30)


def test_state_persists_across_calls():
    p = BimodalPredictor()
    pcs, outs = constant_stream(50)
    p.predict_many(pcs, outs)
    first_rate = p.miss_rate
    p.predict_many(pcs, outs)
    assert p.miss_rate <= first_rate  # warmed up


def test_miss_counts_accumulate():
    p = GSharePredictor()
    pcs, outs = constant_stream(10)
    m1 = p.predict_many(pcs, outs)
    m2 = p.predict_many(pcs, outs)
    assert p.misses == m1 + m2
    assert p.predictions == 20
