"""Known-answer tests for the LRU cache simulator."""

import numpy as np
import pytest

from repro.uarch import Cache, CacheConfig, CacheHierarchy


def tiny_cache(assoc=2, sets=2, line=64):
    return Cache(CacheConfig(size_bytes=line * assoc * sets, line_bytes=line, associativity=assoc))


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=64, associativity=4)  # not multiple
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=64 * 4 * 3, line_bytes=64, associativity=4)  # 3 sets


def test_n_sets():
    cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=4)
    assert cfg.n_sets == 128


def test_cold_miss_then_hit():
    c = tiny_cache()
    assert not c.access(0x100)  # cold miss
    assert c.access(0x100)      # hit
    assert c.access(0x13F)      # same 64B line
    assert c.misses == 1
    assert c.accesses == 3


def test_lru_eviction():
    c = tiny_cache(assoc=2, sets=1, line=64)
    a, b, d = 0x000, 0x040, 0x080
    c.access(a)
    c.access(b)
    c.access(d)          # evicts a (LRU)
    assert not c.access(a)  # miss: was evicted
    assert c.access(d)      # d still resident


def test_lru_order_updated_on_hit():
    c = tiny_cache(assoc=2, sets=1, line=64)
    a, b, d = 0x000, 0x040, 0x080
    c.access(a)
    c.access(b)
    c.access(a)          # a becomes MRU
    c.access(d)          # evicts b, not a
    assert c.access(a)
    assert not c.access(b)


def test_sets_are_independent():
    c = tiny_cache(assoc=1, sets=2, line=64)
    # addresses mapping to set 0 and set 1
    c.access(0x000)  # set 0
    c.access(0x040)  # set 1
    assert c.access(0x000)
    assert c.access(0x040)


def test_access_many_matches_scalar():
    addrs = np.random.default_rng(1).integers(0, 1 << 14, 500) * 8
    c1 = tiny_cache(assoc=4, sets=8)
    c2 = tiny_cache(assoc=4, sets=8)
    misses_scalar = sum(0 if c1.access(int(a)) else 1 for a in addrs)
    misses_vector = c2.access_many(addrs)
    assert misses_scalar == misses_vector


def test_reset_stats_keeps_state():
    c = tiny_cache()
    c.access(0x100)
    c.reset_stats()
    assert c.misses == 0
    assert c.access(0x100)  # still resident


def test_miss_rate():
    c = tiny_cache()
    assert c.miss_rate == 0.0
    c.access(0x100)
    c.access(0x100)
    assert c.miss_rate == pytest.approx(0.5)


def test_sequential_stream_misses_once_per_line():
    c = Cache(CacheConfig(size_bytes=64 * 1024, line_bytes=64, associativity=4))
    addrs = np.arange(0, 8 * 1024, 8, dtype=np.int64)  # 8KB walk, fits
    misses = c.access_many(addrs)
    assert misses == 8 * 1024 // 64


def test_capacity_thrash_on_large_working_set():
    cache = Cache(CacheConfig(size_bytes=4 * 1024, line_bytes=64, associativity=4))
    addrs = np.tile(np.arange(0, 64 * 1024, 64, dtype=np.int64), 2)
    misses = cache.access_many(addrs)
    # Both passes of a 16x-oversized sequential walk miss every line.
    assert misses == len(addrs)


def test_hierarchy_l2_sees_only_l1_misses():
    h = CacheHierarchy(
        CacheConfig(size_bytes=1024, line_bytes=64, associativity=2),
        CacheConfig(size_bytes=8 * 1024, line_bytes=64, associativity=4),
    )
    addrs = np.tile(np.arange(0, 4 * 1024, 64, dtype=np.int64), 3)
    l1_misses, l2_misses = h.access_many(addrs)
    assert h.l2.accesses == l1_misses
    assert l2_misses <= l1_misses
    # Second and third passes hit in L2 (working set fits there).
    assert l2_misses == 4 * 1024 // 64


def test_hierarchy_without_l2():
    h = CacheHierarchy(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2), None)
    l1, l2 = h.access_many(np.arange(0, 2048, 64, dtype=np.int64))
    assert l2 == 0
    assert l1 == 32


def test_hierarchy_empty_stream():
    h = CacheHierarchy(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2), None)
    assert h.access_many(np.empty(0, dtype=np.int64)) == (0, 0)
