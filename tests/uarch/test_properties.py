"""Property-based tests for the microarchitecture substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch import BimodalPredictor, Cache, CacheConfig, GSharePredictor

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def address_streams(draw):
    n = draw(st.integers(1, 400))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    # Mix of sequential runs and random jumps over a bounded region.
    base = rng.integers(0, 1 << 20)
    out = []
    pos = int(base)
    for _ in range(n):
        if rng.random() < 0.7:
            pos += int(rng.integers(0, 128))
        else:
            pos = int(rng.integers(0, 1 << 20))
        out.append(pos)
    return np.array(out, dtype=np.int64)


@settings(**SETTINGS)
@given(address_streams())
def test_misses_bounded_by_accesses(addrs):
    cache = Cache(CacheConfig(4 * 1024, 64, 2))
    misses = cache.access_many(addrs)
    assert 0 <= misses <= len(addrs)
    assert cache.accesses == len(addrs)


@settings(**SETTINGS)
@given(address_streams())
def test_misses_at_least_compulsory(addrs):
    cache = Cache(CacheConfig(1 << 20, 64, 16))  # much bigger than region
    misses = cache.access_many(addrs)
    distinct_lines = len(np.unique(addrs >> 6))
    assert misses == distinct_lines  # only compulsory misses


@settings(**SETTINGS)
@given(address_streams())
def test_lru_stack_property_in_associativity(addrs):
    # With the same number of sets, a higher-associativity LRU cache
    # never misses more (LRU is a stack algorithm per set).
    small = Cache(CacheConfig(64 * 2 * 8, 64, 2))   # 8 sets, 2 ways
    large = Cache(CacheConfig(64 * 8 * 8, 64, 8))   # 8 sets, 8 ways
    assert large.access_many(addrs) <= small.access_many(addrs)


@settings(**SETTINGS)
@given(address_streams())
def test_second_pass_never_misses_more(addrs):
    cache = Cache(CacheConfig(8 * 1024, 64, 4))
    first = cache.access_many(addrs)
    second = cache.access_many(addrs)
    assert second <= len(addrs)
    # A repeated pass cannot have *compulsory* misses.
    if first == len(np.unique(addrs >> 6)):  # all first-pass misses compulsory
        assert second <= len(addrs) - 0  # trivially true; keep bounded
    assert cache.accesses == 2 * len(addrs)


@settings(**SETTINGS)
@given(
    st.integers(0, 2**31),
    st.integers(10, 400),
)
def test_predictor_misses_bounded(seed, n):
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, 64, n).astype(np.int64) * 4
    outs = rng.random(n) < rng.random()
    for p in (BimodalPredictor(), GSharePredictor()):
        misses = p.predict_many(pcs, outs)
        assert 0 <= misses <= n
        assert p.predictions == n


@settings(**SETTINGS)
@given(st.integers(0, 2**31))
def test_predictors_deterministic(seed):
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, 16, 100).astype(np.int64) * 4
    outs = rng.random(100) < 0.5
    a = GSharePredictor()
    b = GSharePredictor()
    assert a.predict_many(pcs, outs) == b.predict_many(pcs, outs)
