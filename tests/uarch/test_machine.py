"""Tests for the trace-driven timing model."""

import pytest

from repro.isa import Trace
from repro.synth import (
    generator,
    matrix_kernel,
    pointer_chase_kernel,
    sorting_kernel,
    streaming_kernel,
)
from repro.uarch import CacheConfig, MachineConfig, simulate


def trace_of(kernel, n=6000, tag="machine"):
    return kernel.generate(n, generator(tag))


@pytest.fixture(scope="module")
def machine():
    return MachineConfig()


def test_rejects_empty_trace(machine):
    with pytest.raises(ValueError):
        simulate(Trace.empty(), machine)


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(width=0)
    with pytest.raises(ValueError):
        MachineConfig(predictor="tage")


def test_result_consistency(machine):
    res = simulate(trace_of(streaming_kernel(seed=1)), machine)
    assert res.instructions == 6000
    assert res.cycles > 0
    assert res.cpi == pytest.approx(res.cycles / res.instructions)
    assert res.ipc == pytest.approx(1.0 / res.cpi)
    for rate in (res.l1d_miss_rate, res.l2_miss_rate, res.l1i_miss_rate, res.bp_miss_rate):
        assert 0.0 <= rate <= 1.0


def test_cpi_at_least_width_limit(machine):
    res = simulate(trace_of(matrix_kernel(seed=2, accumulators=8)), machine)
    assert res.cpi >= 1.0 / machine.width - 1e-9


def test_simulation_is_deterministic(machine):
    t = trace_of(pointer_chase_kernel(seed=3))
    a = simulate(t, machine)
    b = simulate(t, machine)
    assert a.cycles == b.cycles
    assert a.bp_miss_rate == b.bp_miss_rate


def test_pointer_chase_misses_more_than_streaming(machine):
    chase = simulate(trace_of(pointer_chase_kernel(seed=4, n_nodes=1 << 16)), machine)
    stream = simulate(trace_of(streaming_kernel(seed=4, region_kb=8)), machine)
    assert chase.l1d_miss_rate > stream.l1d_miss_rate
    assert chase.cpi > stream.cpi


def test_random_branches_cost_cycles(machine):
    hard = simulate(trace_of(sorting_kernel(seed=5, compare_entropy=0.5)), machine)
    easy = simulate(trace_of(streaming_kernel(seed=5)), machine)
    assert hard.bp_miss_rate > easy.bp_miss_rate


def test_bigger_cache_never_misses_more():
    t = trace_of(pointer_chase_kernel(seed=6, n_nodes=1 << 12))
    small = MachineConfig(l1d=CacheConfig(4 * 1024, 64, 4), l2=None, l1i=None)
    large = MachineConfig(l1d=CacheConfig(64 * 1024, 64, 4), l2=None, l1i=None)
    r_small = simulate(t, small)
    r_large = simulate(t, large)
    assert r_large.l1d_miss_rate <= r_small.l1d_miss_rate
    assert r_large.cpi <= r_small.cpi


def test_wider_machine_never_slower():
    t = trace_of(matrix_kernel(seed=7, accumulators=8))
    narrow = simulate(t, MachineConfig(width=1))
    wide = simulate(t, MachineConfig(width=8))
    assert wide.cycles <= narrow.cycles


def test_warmup_reduces_measured_misses():
    t = trace_of(streaming_kernel(seed=8, region_kb=8))
    cold = simulate(t, MachineConfig(warmup=False))
    warm = simulate(t, MachineConfig(warmup=True))
    assert warm.l1d_miss_rate <= cold.l1d_miss_rate
    assert warm.cpi <= cold.cpi


def test_gshare_machine_beats_bimodal_on_patterns():
    # Alternating-pattern branches: gshare learns, bimodal cannot.
    from repro.synth import BodyBuilder, Kernel, PatternBranch
    from repro.isa import OpClass

    rng = generator("bp-machine")
    builder = BodyBuilder(rng)
    builder.add(OpClass.IADD)
    builder.branch(PatternBranch(pattern=(True, False)))
    t = Kernel("alt", builder.slots).generate(4000, generator("bp", 1))
    gshare = simulate(t, MachineConfig(predictor="gshare"))
    bimodal = simulate(t, MachineConfig(predictor="bimodal"))
    assert gshare.bp_miss_rate < bimodal.bp_miss_rate


def test_icache_disabled(machine):
    t = trace_of(streaming_kernel(seed=9))
    res = simulate(t, MachineConfig(l1i=None))
    assert res.l1i_miss_rate == 0.0
