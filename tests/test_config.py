"""Tests for AnalysisConfig."""

import pytest

from repro.config import AnalysisConfig


def test_presets_are_valid():
    for preset in (AnalysisConfig.paper(), AnalysisConfig.small(), AnalysisConfig.tiny()):
        assert preset.interval_instructions > 0
        assert preset.n_prominent <= preset.n_clusters


def test_presets_scale_down():
    paper, small, tiny = (
        AnalysisConfig.paper(),
        AnalysisConfig.small(),
        AnalysisConfig.tiny(),
    )
    assert paper.interval_instructions > small.interval_instructions > tiny.interval_instructions
    assert paper.n_clusters > small.n_clusters > tiny.n_clusters


def test_replace_creates_modified_copy():
    cfg = AnalysisConfig.tiny()
    other = cfg.replace(n_clusters=99, n_prominent=50)
    assert other.n_clusters == 99
    assert cfg.n_clusters != 99


def test_config_is_frozen():
    cfg = AnalysisConfig.tiny()
    with pytest.raises(Exception):
        cfg.n_clusters = 5


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        AnalysisConfig(interval_instructions=0)
    with pytest.raises(ValueError):
        AnalysisConfig(intervals_per_benchmark=0)
    with pytest.raises(ValueError):
        AnalysisConfig(n_clusters=10, n_prominent=20)
    with pytest.raises(ValueError):
        AnalysisConfig(n_key_characteristics=0)
    with pytest.raises(ValueError):
        AnalysisConfig(n_key_characteristics=100)


def test_cache_key_is_stable():
    assert AnalysisConfig.paper().cache_key() == AnalysisConfig.paper().cache_key()


def test_cache_key_sensitive_to_seed():
    a = AnalysisConfig.tiny()
    b = a.replace(seed=a.seed + 1)
    assert a.cache_key() != b.cache_key()


def test_kmeans_engine_validated():
    assert AnalysisConfig(kmeans_engine="reference").kmeans_engine == "reference"
    assert AnalysisConfig(kmeans_engine="accelerated").kmeans_engine == "accelerated"
    with pytest.raises(ValueError):
        AnalysisConfig(kmeans_engine="fast")


def test_execution_knobs_excluded_from_full_key():
    base = AnalysisConfig.tiny()
    assert base.full_key() == base.replace(kmeans_engine="reference").full_key()
    assert base.full_key() == base.replace(n_jobs=4).full_key()


def test_streaming_knobs_validated():
    base = AnalysisConfig.tiny()
    with pytest.raises(ValueError):
        base.replace(batch_intervals=0)
    assert base.streaming is False
    assert base.replace(streaming=True).streaming is True


def test_streaming_knobs_participate_in_full_key():
    # Streaming is an approximation, not an execution knob: results can
    # differ from the exact path, so both fields key the cache.
    base = AnalysisConfig.tiny()
    assert base.full_key() != base.replace(streaming=True).full_key()
    assert base.full_key() != base.replace(batch_intervals=512).full_key()


def test_spool_knobs_validated():
    base = AnalysisConfig.tiny()
    with pytest.raises(ValueError):
        base.replace(spool_dir="")
    with pytest.raises(ValueError):
        base.replace(spool_max_bytes=-1)
    with pytest.raises(ValueError):
        base.replace(prefetch=-1)
    assert base.spool is True
    assert base.spool_dir is None
    assert base.spool_max_bytes == 0
    assert base.prefetch == 1


def test_spool_knobs_excluded_from_full_key():
    # The spool and prefetch change only how sweeps are served, never
    # what they yield, so they must not invalidate cached results.
    base = AnalysisConfig.tiny()
    assert base.full_key() == base.replace(spool=False).full_key()
    assert base.full_key() == base.replace(spool_dir="/tmp/s").full_key()
    assert base.full_key() == base.replace(spool_max_bytes=1 << 30).full_key()
    assert base.full_key() == base.replace(prefetch=4).full_key()
