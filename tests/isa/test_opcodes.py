"""Tests for the opcode-class vocabulary."""

import numpy as np

from repro.isa import (
    CONTROL_OPS,
    FP_ARITH_OPS,
    INT_ARITH_OPS,
    MEMORY_OPS,
    N_OP_CLASSES,
    OpClass,
    is_control_op,
    is_memory_op,
    op_class_names,
)


def test_op_classes_are_dense_small_ints():
    values = sorted(int(op) for op in OpClass)
    assert values == list(range(N_OP_CLASSES))


def test_op_class_names_order_matches_values():
    names = op_class_names()
    assert names[int(OpClass.LOAD)] == "LOAD"
    assert names[int(OpClass.OTHER)] == "OTHER"
    assert len(names) == N_OP_CLASSES


def test_category_tuples_are_disjoint():
    groups = [MEMORY_OPS, CONTROL_OPS, INT_ARITH_OPS, FP_ARITH_OPS]
    seen = set()
    for group in groups:
        for op in group:
            assert op not in seen
            seen.add(op)


def test_is_memory_op_vectorized():
    ops = np.array([int(OpClass.LOAD), int(OpClass.STORE), int(OpClass.IADD)], dtype=np.uint8)
    assert is_memory_op(ops).tolist() == [True, True, False]


def test_is_control_op_vectorized():
    ops = np.array([int(OpClass.BRANCH), int(OpClass.CALL), int(OpClass.FMUL)], dtype=np.uint8)
    assert is_control_op(ops).tolist() == [True, True, False]


def test_op_classes_fit_in_uint8():
    assert max(int(op) for op in OpClass) < 256
