"""Tests for the struct-of-arrays Trace."""

import pytest

from repro.isa import NO_ADDR, NO_REG, OpClass, Trace, concat

from ..conftest import make_trace


def test_empty_trace_has_zero_length():
    t = Trace.empty()
    assert len(t) == 0
    t.validate()


def test_zeros_trace_validates():
    t = Trace.zeros(10)
    assert len(t) == 10
    t.validate()


def test_mismatched_field_lengths_rejected():
    t = Trace.zeros(4)
    with pytest.raises(ValueError, match="length"):
        Trace(
            op=t.op,
            src1=t.src1[:2],
            src2=t.src2,
            dst=t.dst,
            addr=t.addr,
            pc=t.pc,
            taken=t.taken,
        )


def test_slice_is_view_not_copy():
    t = Trace.zeros(10)
    s = t.slice(2, 5)
    assert len(s) == 3
    s.op[0] = int(OpClass.FMUL)
    assert t.op[2] == int(OpClass.FMUL)


def test_validate_rejects_memory_op_without_address():
    t = make_trace([(OpClass.LOAD, 1, NO_REG, 2, NO_ADDR, 0x100)])
    with pytest.raises(ValueError, match="without an effective address"):
        t.validate()


def test_validate_rejects_address_on_non_memory_op():
    t = make_trace([(OpClass.IADD, 1, 2, 3, 0x1000, 0x100)])
    with pytest.raises(ValueError, match="with an effective address"):
        t.validate()


def test_validate_rejects_taken_non_branch():
    t = make_trace([(OpClass.IADD, 1, 2, 3, NO_ADDR, 0x100, True)])
    with pytest.raises(ValueError, match="non-branch"):
        t.validate()


def test_validate_rejects_out_of_range_register():
    t = make_trace([(OpClass.IADD, 200, NO_REG, 3, NO_ADDR, 0)])
    with pytest.raises(ValueError, match="register id"):
        t.validate()


def test_validate_rejects_out_of_range_opcode():
    t = Trace.zeros(1)
    t.op[0] = 250
    with pytest.raises(ValueError, match="opcode"):
        t.validate()


def test_validate_rejects_negative_pc():
    t = Trace.zeros(1)
    t.pc[0] = -5
    with pytest.raises(ValueError, match="negative pc"):
        t.validate()


def test_validate_accepts_taken_branch_and_call():
    t = make_trace(
        [
            (OpClass.BRANCH, 1, NO_REG, NO_REG, NO_ADDR, 0x10, True),
            (OpClass.CALL, NO_REG, NO_REG, NO_REG, NO_ADDR, 0x14, True),
        ]
    )
    t.validate()


def test_concat_preserves_order_and_length():
    a = make_trace([(OpClass.IADD, 0, 1, 2)])
    b = make_trace([(OpClass.FMUL, 3, 4, 5), (OpClass.LOGIC, 1, 1, 6)])
    c = concat([a, b])
    assert len(c) == 3
    assert c.op.tolist() == [int(OpClass.IADD), int(OpClass.FMUL), int(OpClass.LOGIC)]
    assert c.dst.tolist() == [2, 5, 6]


def test_concat_of_empty_list_is_empty():
    assert len(concat([])) == 0


def test_concat_skips_empty_traces():
    a = make_trace([(OpClass.IADD, 0, 1, 2)])
    c = concat([Trace.empty(), a, Trace.empty()])
    assert len(c) == 1


def test_concat_single_trace_returns_it():
    a = make_trace([(OpClass.IADD, 0, 1, 2)])
    assert concat([a]) is a
