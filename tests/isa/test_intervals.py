"""Tests for interval splitting."""

import pytest

from repro.isa import Trace, interval_count, iter_interval_bounds, split_intervals


def test_split_exact_multiple():
    t = Trace.zeros(100)
    parts = split_intervals(t, 25)
    assert len(parts) == 4
    assert all(len(p) == 25 for p in parts)


def test_split_drops_partial_by_default():
    t = Trace.zeros(105)
    parts = split_intervals(t, 25)
    assert len(parts) == 4


def test_split_keeps_partial_when_asked():
    t = Trace.zeros(105)
    parts = split_intervals(t, 25, drop_partial=False)
    assert len(parts) == 5
    assert len(parts[-1]) == 5


def test_split_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        split_intervals(Trace.zeros(10), 0)


def test_iter_interval_bounds_matches_split():
    bounds = list(iter_interval_bounds(100, 30))
    assert bounds == [(0, 30), (30, 60), (60, 90)]


def test_interval_count():
    assert interval_count(100, 30) == 3
    assert interval_count(90, 30) == 3
    assert interval_count(29, 30) == 0


def test_interval_count_rejects_nonpositive():
    with pytest.raises(ValueError):
        interval_count(100, 0)
