"""Tests for cumulative coverage / diversity (Figure 5 analysis)."""

import numpy as np
import pytest

from repro.analysis import clusters_to_cover, cumulative_coverage
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def build(suites, labels, k):
    n = len(suites)
    dataset = WorkloadDataset(
        features=np.zeros((n, N_FEATURES)),
        suites=np.array(suites),
        benchmarks=np.array([f"b{i}" for i in range(n)]),
        interval_indices=np.arange(n, dtype=np.int64),
    )
    clustering = Clustering(
        centers=np.zeros((k, 2)),
        labels=np.array(labels),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    return dataset, clustering


def test_curve_known_answer():
    # Suite 'a': 4 rows in cluster 0, 2 in cluster 1, 2 in cluster 2.
    dataset, clustering = build(
        ["a"] * 8, [0, 0, 0, 0, 1, 1, 2, 2], k=3
    )
    curves = cumulative_coverage(dataset, clustering)
    assert np.allclose(curves["a"], [0.5, 0.75, 1.0])


def test_curves_are_monotone_and_end_at_one():
    rng = np.random.default_rng(5)
    labels = rng.integers(0, 6, 60).tolist()
    dataset, clustering = build(["s"] * 60, labels, k=6)
    curve = cumulative_coverage(dataset, clustering)["s"]
    assert (np.diff(curve) >= -1e-12).all()
    assert curve[-1] == pytest.approx(1.0)


def test_concentrated_suite_has_shorter_curve():
    dataset, clustering = build(
        ["flat"] * 4 + ["peaky"] * 4,
        [0, 1, 2, 3, 4, 4, 4, 4],
        k=5,
    )
    curves = cumulative_coverage(dataset, clustering)
    assert len(curves["peaky"]) == 1
    assert len(curves["flat"]) == 4


def test_clusters_to_cover_thresholds():
    curve = np.array([0.5, 0.75, 0.9, 1.0])
    assert clusters_to_cover(curve, 0.5) == 1
    assert clusters_to_cover(curve, 0.8) == 3
    assert clusters_to_cover(curve, 0.9) == 3
    assert clusters_to_cover(curve, 1.0) == 4


def test_clusters_to_cover_empty_curve():
    assert clusters_to_cover(np.zeros(0), 0.9) == 0


def test_clusters_to_cover_rejects_bad_fraction():
    with pytest.raises(ValueError):
        clusters_to_cover(np.array([1.0]), 0.0)
    with pytest.raises(ValueError):
        clusters_to_cover(np.array([1.0]), 1.5)


def test_missing_suite_gets_empty_curve():
    dataset, clustering = build(["a"], [0], k=1)
    curves = cumulative_coverage(dataset, clustering, suites=["a", "ghost"])
    assert len(curves["ghost"]) == 0
