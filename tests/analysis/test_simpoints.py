"""Tests for phase-based simulation points."""

import numpy as np
import pytest

from repro.analysis import (
    PhaseBasedSimulation,
    cluster_representative_rows,
    random_interval_baseline,
    trace_for_row,
)
from repro.uarch import MachineConfig


@pytest.fixture(scope="module")
def machine():
    return MachineConfig()


@pytest.fixture(scope="module")
def sim(small_result, small_config, machine):
    return PhaseBasedSimulation(small_result, small_config, machine)


def test_trace_for_row_regenerates_interval(small_result, small_config):
    trace = trace_for_row(small_result, 0, small_config)
    assert len(trace) == small_config.interval_instructions
    trace.validate()


def test_representatives_cover_all_nonempty_clusters(small_result):
    reps = cluster_representative_rows(small_result)
    sizes = small_result.clustering.cluster_sizes()
    assert set(reps) == set(np.flatnonzero(sizes > 0).tolist())
    for cluster, row in reps.items():
        assert small_result.clustering.labels[row] == cluster


def test_benchmark_cpi_positive(sim):
    cpi = sim.benchmark_cpi("SPECfp2006", "lbm")
    assert cpi > 0


def test_unknown_benchmark_raises(sim):
    with pytest.raises(KeyError):
        sim.benchmark_cpi("BMW", "retina")
    with pytest.raises(KeyError):
        sim.true_benchmark_cpi("BMW", "retina")


def test_phase_estimate_close_to_truth_for_homogeneous(sim):
    est = sim.benchmark_cpi("SPECfp2006", "lbm")
    true = sim.true_benchmark_cpi("SPECfp2006", "lbm")
    assert est == pytest.approx(true, rel=0.15)


def test_phase_estimate_close_for_multiphase(sim):
    est = sim.benchmark_cpi("SPECint2006", "astar")
    true = sim.true_benchmark_cpi("SPECint2006", "astar")
    assert est == pytest.approx(true, rel=0.3)


def test_truncated_truth_spans_phases(sim):
    full = sim.true_benchmark_cpi("BMW", "speak")
    truncated = sim.true_benchmark_cpi("BMW", "speak", max_intervals=6)
    # An evenly-spread truncation must not collapse to one phase.
    assert truncated == pytest.approx(full, rel=0.5)


def test_representative_results_are_cached(sim):
    before = sim.simulated_representatives
    sim.benchmark_cpi("SPECfp2006", "lbm")
    mid = sim.simulated_representatives
    sim.benchmark_cpi("SPECfp2006", "lbm")
    assert sim.simulated_representatives == mid
    assert mid >= before


def test_reduction_factor(sim, small_result):
    factor = sim.reduction_factor()
    reps = cluster_representative_rows(small_result)
    assert factor == pytest.approx(len(small_result.dataset) / len(reps))
    assert factor > 1.0


def test_random_baseline_returns_member_cpi(sim):
    cpi = random_interval_baseline(sim, "SPECint2006", "sjeng", seed=3)
    assert cpi > 0


def test_random_baseline_unknown_benchmark(sim):
    with pytest.raises(KeyError):
        random_interval_baseline(sim, "BMW", "retina")
