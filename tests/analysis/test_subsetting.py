"""Tests for representative benchmark subsetting."""

import numpy as np
import pytest

from repro.analysis import (
    select_representative_benchmarks,
    subset_quality,
)
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def build(benchmarks, labels, k, suites=None):
    n = len(benchmarks)
    dataset = WorkloadDataset(
        features=np.zeros((n, N_FEATURES)),
        suites=np.array(suites or ["s"] * n),
        benchmarks=np.array(benchmarks),
        interval_indices=np.arange(n, dtype=np.int64),
    )
    clustering = Clustering(
        centers=np.zeros((k, 2)),
        labels=np.array(labels),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    return dataset, clustering


def test_greedy_picks_widest_benchmark_first():
    # 'wide' covers clusters {0,1,2}; 'a' covers {0}; 'b' covers {3}.
    dataset, clustering = build(
        ["wide", "wide", "wide", "a", "b"], [0, 1, 2, 0, 3], k=4
    )
    sel = select_representative_benchmarks(dataset, clustering, 2)
    assert sel.benchmarks[0] == "s/wide"
    assert sel.benchmarks[1] == "s/b"  # adds the only uncovered cluster


def test_coverage_trajectory_monotone_to_one():
    dataset, clustering = build(
        ["a", "b", "c", "d"], [0, 1, 2, 3], k=4
    )
    sel = select_representative_benchmarks(dataset, clustering, 4)
    assert list(sel.coverage) == sorted(sel.coverage)
    assert sel.final_coverage == pytest.approx(1.0)


def test_coverage_weighted_by_cluster_size():
    # 'heavy' covers a 3-row cluster; 'light' a 1-row cluster.
    dataset, clustering = build(
        ["heavy", "x", "x", "light"], [0, 0, 0, 1], k=2
    )
    sel = select_representative_benchmarks(dataset, clustering, 1)
    assert sel.benchmarks == ("s/heavy",) or sel.benchmarks == ("s/x",)
    assert sel.coverage[0] == pytest.approx(0.75)


def test_candidates_restrict_selection_not_coverage():
    dataset, clustering = build(
        ["a", "b"], [0, 1], k=2
    )
    sel = select_representative_benchmarks(
        dataset, clustering, 2, candidates=["s/a"]
    )
    assert sel.benchmarks == ("s/a",)
    assert sel.final_coverage == pytest.approx(0.5)


def test_unknown_candidate_raises():
    dataset, clustering = build(["a"], [0], k=1)
    with pytest.raises(KeyError):
        select_representative_benchmarks(
            dataset, clustering, 1, candidates=["s/ghost"]
        )


def test_rejects_bad_count():
    dataset, clustering = build(["a"], [0], k=1)
    with pytest.raises(ValueError):
        select_representative_benchmarks(dataset, clustering, 0)


def test_subset_quality_matches_selection():
    dataset, clustering = build(
        ["a", "b", "c"], [0, 1, 2], k=3
    )
    sel = select_representative_benchmarks(dataset, clustering, 2)
    assert subset_quality(dataset, clustering, sel.benchmarks) == pytest.approx(
        sel.final_coverage
    )


def test_subset_quality_unknown_benchmark():
    dataset, clustering = build(["a"], [0], k=1)
    with pytest.raises(KeyError):
        subset_quality(dataset, clustering, ["s/ghost"])


def test_greedy_on_real_characterization(small_dataset, small_result):
    sel = select_representative_benchmarks(
        small_dataset, small_result.clustering, 10
    )
    assert len(sel) == 10
    assert len(set(sel.benchmarks)) == 10
    # Ten well-chosen benchmarks cover a large share of the space...
    assert sel.final_coverage > 0.3
    # ...and greedy beats an arbitrary ten.
    arbitrary = sorted(set(small_dataset.benchmark_keys))[:10]
    assert sel.final_coverage >= subset_quality(
        small_dataset, small_result.clustering, arbitrary
    )
