"""Tests for generation-drift analysis."""

import pytest

from repro.analysis import (
    GENERATION_PAIRS,
    benchmark_centroid,
    benchmark_drift,
    generation_drift,
    typical_benchmark_distance,
)


def test_centroid_shape(small_result):
    c = benchmark_centroid(small_result, "SPECint2006", "astar")
    assert c.shape == (small_result.space.shape[1],)


def test_centroid_unknown_benchmark(small_result):
    with pytest.raises(KeyError):
        benchmark_centroid(small_result, "BMW", "retina")


def test_drift_is_symmetric_and_nonnegative(small_result):
    d1 = benchmark_drift(
        small_result, ("SPECint2000", "bzip2"), ("SPECint2006", "bzip2")
    )
    d2 = benchmark_drift(
        small_result, ("SPECint2006", "bzip2"), ("SPECint2000", "bzip2")
    )
    assert d1 == pytest.approx(d2)
    assert d1 >= 0


def test_self_drift_is_zero(small_result):
    d = benchmark_drift(
        small_result, ("SPECint2006", "astar"), ("SPECint2006", "astar")
    )
    assert d == 0.0


def test_generation_drift_covers_all_pairs(small_result):
    drift = generation_drift(small_result)
    assert len(drift) == len(GENERATION_PAIRS)
    assert "SPECint2006/bzip2" in drift
    assert all(v >= 0 for v in drift.values())


def test_successors_drift_less_than_unrelated_benchmarks(small_result):
    # bzip2-2006 is still closer to bzip2-2000 than random pairs are to
    # each other: a successor is a drifted version, not a new workload.
    drift = generation_drift(small_result)
    yardstick = typical_benchmark_distance(
        small_result, suites=("SPECint2000", "SPECint2006")
    )
    assert drift["SPECint2006/bzip2"] < yardstick
    assert drift["SPECint2006/perlbench"] < yardstick


def test_typical_distance_requires_two_benchmarks(small_result):
    with pytest.raises(ValueError):
        typical_benchmark_distance(small_result, suites=("NoSuchSuite",))


# --- StreamingDriftMonitor --------------------------------------------------


def _monitor_batch(rows):
    """``(suites, benchmarks, points)`` arrays from (suite, name, point) rows."""
    import numpy as np

    suites = np.array([r[0] for r in rows])
    names = np.array([r[1] for r in rows])
    points = np.array([r[2] for r in rows], dtype=np.float64)
    return suites, names, points


def test_monitor_centroids_are_running_means():
    import numpy as np

    from repro.analysis import StreamingDriftMonitor

    monitor = StreamingDriftMonitor()
    monitor.update(*_monitor_batch([
        ("SPECint2000", "bzip2", [1.0, 0.0]),
        ("SPECint2000", "bzip2", [3.0, 0.0]),
        ("SPECint2000", "gcc", [0.0, 2.0]),
    ]))
    monitor.update(*_monitor_batch([
        ("SPECint2000", "bzip2", [5.0, 0.0]),
    ]))
    assert monitor.n_rows == 4
    np.testing.assert_allclose(
        monitor.centroid("SPECint2000", "bzip2"), [3.0, 0.0]
    )
    np.testing.assert_allclose(monitor.centroid("SPECint2000", "gcc"), [0.0, 2.0])


def test_monitor_drift_none_until_both_generations_seen():
    import numpy as np

    from repro.analysis import StreamingDriftMonitor

    monitor = StreamingDriftMonitor()
    monitor.update(*_monitor_batch([("SPECint2000", "bzip2", [0.0, 0.0])]))
    assert monitor.drift()["SPECint2006/bzip2"] is None
    monitor.update(*_monitor_batch([("SPECint2006", "bzip2", [3.0, 4.0])]))
    drift = monitor.drift()
    assert drift["SPECint2006/bzip2"] == pytest.approx(5.0)
    assert drift["SPECint2006/gcc"] is None
    assert np.isfinite(monitor.centroid("SPECint2006", "bzip2")).all()


def test_monitor_matches_batch_drift(small_result):
    """Fed the finished space, the monitor reproduces generation_drift."""
    import numpy as np

    from repro.analysis import StreamingDriftMonitor

    monitor = StreamingDriftMonitor()
    ds = small_result.dataset
    space = small_result.space
    for start in range(0, len(space), 37):
        stop = start + 37
        monitor.update(
            ds.suites[start:stop], ds.benchmarks[start:stop], space[start:stop]
        )
    batch = generation_drift(small_result)
    streamed = monitor.drift()
    for key, value in batch.items():
        assert streamed[key] == pytest.approx(value, rel=1e-9)
    assert monitor.n_rows == len(space)


def test_monitor_rejects_mismatched_lengths():
    import numpy as np

    from repro.analysis import StreamingDriftMonitor

    monitor = StreamingDriftMonitor()
    with pytest.raises(ValueError):
        monitor.update(
            np.array(["A"]), np.array(["x", "y"]), np.zeros((1, 2))
        )


def test_monitor_unknown_centroid():
    from repro.analysis import StreamingDriftMonitor

    with pytest.raises(KeyError):
        StreamingDriftMonitor().centroid("SPECint2000", "bzip2")
