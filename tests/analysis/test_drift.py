"""Tests for generation-drift analysis."""

import pytest

from repro.analysis import (
    GENERATION_PAIRS,
    benchmark_centroid,
    benchmark_drift,
    generation_drift,
    typical_benchmark_distance,
)


def test_centroid_shape(small_result):
    c = benchmark_centroid(small_result, "SPECint2006", "astar")
    assert c.shape == (small_result.space.shape[1],)


def test_centroid_unknown_benchmark(small_result):
    with pytest.raises(KeyError):
        benchmark_centroid(small_result, "BMW", "retina")


def test_drift_is_symmetric_and_nonnegative(small_result):
    d1 = benchmark_drift(
        small_result, ("SPECint2000", "bzip2"), ("SPECint2006", "bzip2")
    )
    d2 = benchmark_drift(
        small_result, ("SPECint2006", "bzip2"), ("SPECint2000", "bzip2")
    )
    assert d1 == pytest.approx(d2)
    assert d1 >= 0


def test_self_drift_is_zero(small_result):
    d = benchmark_drift(
        small_result, ("SPECint2006", "astar"), ("SPECint2006", "astar")
    )
    assert d == 0.0


def test_generation_drift_covers_all_pairs(small_result):
    drift = generation_drift(small_result)
    assert len(drift) == len(GENERATION_PAIRS)
    assert "SPECint2006/bzip2" in drift
    assert all(v >= 0 for v in drift.values())


def test_successors_drift_less_than_unrelated_benchmarks(small_result):
    # bzip2-2006 is still closer to bzip2-2000 than random pairs are to
    # each other: a successor is a drifted version, not a new workload.
    drift = generation_drift(small_result)
    yardstick = typical_benchmark_distance(
        small_result, suites=("SPECint2000", "SPECint2006")
    )
    assert drift["SPECint2006/bzip2"] < yardstick
    assert drift["SPECint2006/perlbench"] < yardstick


def test_typical_distance_requires_two_benchmarks(small_result):
    with pytest.raises(ValueError):
        typical_benchmark_distance(small_result, suites=("NoSuchSuite",))
