"""Tests for similarity-based performance prediction."""

import pytest

from repro.analysis import SimilarityPredictor
from repro.uarch import MachineConfig


@pytest.fixture(scope="module")
def predictor(small_result, small_config):
    return SimilarityPredictor(small_result, small_config, MachineConfig())


def test_prediction_positive(predictor):
    cpi = predictor.predict_benchmark_cpi("MediaBenchII", "h264")
    assert cpi > 0


def test_unknown_benchmark_raises(predictor):
    with pytest.raises(KeyError):
        predictor.predict_benchmark_cpi("BMW", "retina")


def test_prediction_excludes_own_intervals(predictor, small_result):
    # The target's own rows are excluded from the anchor pool, so the
    # prediction cannot be a trivial self-lookup.  For an archetype-
    # sharing benchmark the prediction is still accurate.
    predicted, true, error = predictor.prediction_error("MediaBenchII", "h264")
    assert error < 0.5


def test_shared_benchmark_predicts_well(predictor):
    # h264ref shares its archetypes with MediaBench II's h264: the
    # foreign anchors include near-identical behaviour.
    _, _, error = predictor.prediction_error("SPECint2006", "h264ref")
    assert error < 0.3


def test_anchor_cpi_cached(predictor):
    predictor.predict_benchmark_cpi("BMW", "face")
    n = len(predictor._anchor_cpi)
    predictor.predict_benchmark_cpi("BMW", "face")
    assert len(predictor._anchor_cpi) == n


def test_prediction_deterministic(predictor):
    a = predictor.predict_benchmark_cpi("BMW", "speak")
    b = predictor.predict_benchmark_cpi("BMW", "speak")
    assert a == b
