"""Tests for suite uniqueness (Figure 6 analysis)."""

import numpy as np
import pytest

from repro.analysis import suite_uniqueness
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def build(suites, labels, k):
    n = len(suites)
    dataset = WorkloadDataset(
        features=np.zeros((n, N_FEATURES)),
        suites=np.array(suites),
        benchmarks=np.array([f"b{i}" for i in range(n)]),
        interval_indices=np.arange(n, dtype=np.int64),
    )
    clustering = Clustering(
        centers=np.zeros((k, 2)),
        labels=np.array(labels),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    return dataset, clustering


def test_fully_unique_suite():
    dataset, clustering = build(["a", "a", "b", "b"], [0, 0, 1, 1], k=2)
    uniq = suite_uniqueness(dataset, clustering)
    assert uniq["a"] == pytest.approx(1.0)
    assert uniq["b"] == pytest.approx(1.0)


def test_fully_shared_suites():
    dataset, clustering = build(["a", "b", "a", "b"], [0, 0, 1, 1], k=2)
    uniq = suite_uniqueness(dataset, clustering)
    assert uniq["a"] == 0.0
    assert uniq["b"] == 0.0


def test_partial_uniqueness_known_answer():
    # suite a: 3 rows in exclusive cluster 0, 1 row in shared cluster 1.
    dataset, clustering = build(
        ["a", "a", "a", "a", "b"], [0, 0, 0, 1, 1], k=2
    )
    uniq = suite_uniqueness(dataset, clustering)
    assert uniq["a"] == pytest.approx(0.75)
    assert uniq["b"] == 0.0


def test_uniqueness_in_unit_interval():
    rng = np.random.default_rng(9)
    suites = rng.choice(["a", "b", "c"], 60).tolist()
    labels = rng.integers(0, 8, 60).tolist()
    dataset, clustering = build(suites, labels, k=8)
    for v in suite_uniqueness(dataset, clustering).values():
        assert 0.0 <= v <= 1.0


def test_missing_suite_zero():
    dataset, clustering = build(["a"], [0], k=1)
    uniq = suite_uniqueness(dataset, clustering, suites=["ghost"])
    assert uniq["ghost"] == 0.0
