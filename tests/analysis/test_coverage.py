"""Tests for workload-space coverage (Figure 4 analysis)."""

import numpy as np

from repro.analysis import suite_coverage
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def build(suites, labels, k):
    n = len(suites)
    dataset = WorkloadDataset(
        features=np.zeros((n, N_FEATURES)),
        suites=np.array(suites),
        benchmarks=np.array([f"b{i}" for i in range(n)]),
        interval_indices=np.arange(n, dtype=np.int64),
    )
    clustering = Clustering(
        centers=np.zeros((k, 2)),
        labels=np.array(labels),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    return dataset, clustering


def test_counts_clusters_touched():
    dataset, clustering = build(
        ["a", "a", "a", "b"], [0, 1, 2, 2], k=4
    )
    cov = suite_coverage(dataset, clustering)
    assert cov["a"] == 3
    assert cov["b"] == 1


def test_shared_cluster_counts_for_both():
    dataset, clustering = build(["a", "b"], [0, 0], k=2)
    cov = suite_coverage(dataset, clustering)
    assert cov == {"a": 1, "b": 1}


def test_explicit_suite_list_and_missing_suite():
    dataset, clustering = build(["a", "a"], [0, 1], k=2)
    cov = suite_coverage(dataset, clustering, suites=["a", "ghost"])
    assert cov["a"] == 2
    assert cov["ghost"] == 0


def test_coverage_bounded_by_k():
    labels = [i % 3 for i in range(30)]
    dataset, clustering = build(["s"] * 30, labels, k=3)
    cov = suite_coverage(dataset, clustering)
    assert cov["s"] == 3
