"""Tests for suite redundancy and marginal-value ordering."""

import numpy as np
import pytest

from repro.analysis import marginal_value_order, suite_redundancy
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def build(suites, labels, k):
    n = len(suites)
    dataset = WorkloadDataset(
        features=np.zeros((n, N_FEATURES)),
        suites=np.array(suites),
        benchmarks=np.array([f"b{i}" for i in range(n)]),
        interval_indices=np.arange(n, dtype=np.int64),
    )
    clustering = Clustering(
        centers=np.zeros((k, 2)),
        labels=np.array(labels),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    return dataset, clustering


def test_fully_redundant_suite():
    # Every cluster of 'm' also contains 'ref'.
    dataset, clustering = build(
        ["m", "ref", "m", "ref"], [0, 0, 1, 1], k=2
    )
    r = suite_redundancy(dataset, clustering, reference_suites=["ref"])
    assert r["m"] == pytest.approx(1.0)


def test_unique_suite_not_redundant():
    dataset, clustering = build(
        ["u", "u", "ref", "ref"], [0, 0, 1, 1], k=2
    )
    r = suite_redundancy(dataset, clustering, reference_suites=["ref"])
    assert r["u"] == 0.0


def test_partial_redundancy_known_answer():
    # 'm' has 3 rows in a shared cluster, 1 in its own.
    dataset, clustering = build(
        ["m", "m", "m", "ref", "m"], [0, 0, 0, 0, 1], k=2
    )
    r = suite_redundancy(dataset, clustering, reference_suites=["ref"])
    assert r["m"] == pytest.approx(0.75)


def test_reference_suite_measured_against_others():
    # With a single reference, the reference's own redundancy is 0 —
    # there are no *other* reference suites to cover it.
    dataset, clustering = build(["ref", "ref"], [0, 1], k=2)
    r = suite_redundancy(dataset, clustering, reference_suites=["ref"])
    assert r["ref"] == 0.0


def test_two_references_cover_each_other():
    dataset, clustering = build(["a", "b", "a", "b"], [0, 0, 1, 1], k=2)
    r = suite_redundancy(dataset, clustering, reference_suites=["a", "b"])
    assert r["a"] == pytest.approx(1.0)
    assert r["b"] == pytest.approx(1.0)


def test_missing_suite_zero():
    dataset, clustering = build(["a"], [0], k=1)
    r = suite_redundancy(
        dataset, clustering, reference_suites=["a"], suites=["ghost"]
    )
    assert r["ghost"] == 0.0


def test_marginal_value_order_prefers_wide_suite():
    # 'wide' touches 3 clusters, 'narrow' 1 (already inside wide's).
    dataset, clustering = build(
        ["wide", "wide", "wide", "narrow"], [0, 1, 2, 0], k=3
    )
    order = marginal_value_order(dataset, clustering)
    assert order[0] == "wide"
    assert order[-1] == "narrow"


def test_marginal_value_order_counts_new_clusters_only():
    # 'a' covers clusters {0,1}; 'b' covers {1,2,3}; 'c' covers {0}.
    suites = ["a", "a", "b", "b", "b", "c"]
    labels = [0, 1, 1, 2, 3, 0]
    dataset, clustering = build(suites, labels, k=4)
    order = marginal_value_order(dataset, clustering)
    # b first (3 clusters), then a (adds cluster 0), then c (adds none).
    assert order == ["b", "a", "c"]


def test_order_contains_every_suite_once():
    rng = np.random.default_rng(3)
    suites = rng.choice(["a", "b", "c", "d"], 40).tolist()
    labels = rng.integers(0, 6, 40).tolist()
    dataset, clustering = build(suites, labels, k=6)
    order = marginal_value_order(dataset, clustering)
    assert sorted(order) == sorted(set(suites))
