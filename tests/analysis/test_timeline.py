"""Tests for phase timelines."""

import pytest

from repro.analysis.timeline import ascii_timeline, benchmark_timeline


def test_timeline_ordered_and_deduplicated(small_result):
    timeline = benchmark_timeline(small_result, "SPECint2006", "astar")
    indices = [i for i, _ in timeline]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)


def test_timeline_unknown_benchmark(small_result):
    with pytest.raises(KeyError):
        benchmark_timeline(small_result, "BMW", "retina")


def test_timeline_clusters_valid(small_result):
    timeline = benchmark_timeline(small_result, "SPECfp2006", "wrf")
    for _, cluster in timeline:
        assert 0 <= cluster < small_result.clustering.k


def test_two_phase_benchmark_shows_transition(small_result):
    # astar's schedule is [search 40%, graph 60%]: early intervals and
    # late intervals use different clusters.
    timeline = benchmark_timeline(small_result, "SPECint2006", "astar")
    early = {c for _, c in timeline[:3]}
    late = {c for _, c in timeline[-3:]}
    assert early != late


def test_ascii_strip_and_legend(small_result):
    lines = ascii_timeline(small_result, "SPECint2006", "astar", width=32)
    assert lines[0].startswith("SPECint2006/astar: ")
    strip = lines[0].split(": ", 1)[1]
    assert 0 < len(strip) <= 32
    assert "A = cluster" in lines[1]


def test_ascii_homogeneous_benchmark_is_mostly_one_letter(small_result):
    lines = ascii_timeline(small_result, "SPECfp2006", "lbm")
    strip = lines[0].split(": ", 1)[1]
    dominant = max(set(strip), key=strip.count)
    assert strip.count(dominant) / len(strip) > 0.6
