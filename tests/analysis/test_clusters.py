"""Tests for cluster composition and classification.

Uses a hand-crafted dataset/clustering pair with known membership so
every number is verifiable by eye.
"""

import numpy as np
import pytest

from repro.analysis import (
    ClusterKind,
    cluster_compositions,
    compositions_by_id,
    group_by_kind,
)
from repro.core import WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


def synthetic_dataset_and_clustering():
    """6 rows: a/x twice, a/y twice, b/z twice; 3 clusters.

    Cluster 0: both a/x rows (benchmark-specific).
    Cluster 1: one a/y row + one b/z row (mixed).
    Cluster 2: one a/y row + one a/x?? no - one a/y and one b/z? ->
    built as: a/y + a/x? Keep it simple: cluster 2 holds one a/y row
    and one b/z row?  No: cluster 2 = a/y row + a/x? See labels below.
    """
    suites = np.array(["a", "a", "a", "a", "b", "b"])
    benchmarks = np.array(["x", "x", "y", "y", "z", "z"])
    features = np.zeros((6, N_FEATURES))
    dataset = WorkloadDataset(
        features=features,
        suites=suites,
        benchmarks=benchmarks,
        interval_indices=np.arange(6, dtype=np.int64),
    )
    # cluster 0: rows 0,1 (only a/x)        -> benchmark-specific
    # cluster 1: rows 2,3 (only a/y)        -> benchmark-specific
    # cluster 2: rows 4,5 (only b/z)        -> benchmark-specific
    labels = np.array([0, 0, 1, 1, 2, 2])
    centers = np.zeros((3, 2))
    clustering = Clustering(
        centers=centers, labels=labels, bic=0.0, inertia=0.0, n_iter=1
    )
    return dataset, clustering


def mixed_dataset_and_clustering():
    suites = np.array(["a", "a", "a", "b", "b", "b"])
    benchmarks = np.array(["x", "x", "y", "z", "z", "w"])
    dataset = WorkloadDataset(
        features=np.zeros((6, N_FEATURES)),
        suites=suites,
        benchmarks=benchmarks,
        interval_indices=np.arange(6, dtype=np.int64),
    )
    # cluster 0: rows 0,1 (a/x only)     -> benchmark-specific
    # cluster 1: rows 2,3 (a/y + b/z)    -> mixed
    # cluster 2: rows 4,5 (b/z + b/w)    -> suite-specific
    labels = np.array([0, 0, 1, 1, 2, 2])
    clustering = Clustering(
        centers=np.zeros((3, 2)), labels=labels, bic=0.0, inertia=0.0, n_iter=1
    )
    return dataset, clustering


def test_compositions_cover_all_clusters():
    dataset, clustering = synthetic_dataset_and_clustering()
    comps = cluster_compositions(dataset, clustering)
    assert len(comps) == 3
    assert sum(c.size for c in comps) == 6


def test_weights_sum_to_one():
    dataset, clustering = synthetic_dataset_and_clustering()
    comps = cluster_compositions(dataset, clustering)
    assert sum(c.weight for c in comps) == pytest.approx(1.0)


def test_benchmark_fraction_is_of_benchmark():
    dataset, clustering = mixed_dataset_and_clustering()
    comps = compositions_by_id(cluster_compositions(dataset, clustering))
    # b/z has 2 rows total; cluster 1 holds 1 of them.
    assert comps[1].benchmark_fraction["b/z"] == pytest.approx(1 / 2)
    # a/x has 2 rows, both in cluster 0.
    assert comps[0].benchmark_fraction["a/x"] == pytest.approx(1.0)


def test_kind_classification():
    dataset, clustering = mixed_dataset_and_clustering()
    comps = compositions_by_id(cluster_compositions(dataset, clustering))
    assert comps[0].kind is ClusterKind.BENCHMARK_SPECIFIC
    assert comps[1].kind is ClusterKind.MIXED
    assert comps[2].kind is ClusterKind.SUITE_SPECIFIC


def test_group_by_kind_partitions():
    dataset, clustering = mixed_dataset_and_clustering()
    comps = cluster_compositions(dataset, clustering)
    groups = group_by_kind(comps)
    assert len(groups[ClusterKind.BENCHMARK_SPECIFIC]) == 1
    assert len(groups[ClusterKind.MIXED]) == 1
    assert len(groups[ClusterKind.SUITE_SPECIFIC]) == 1


def test_pie_shares_sorted_and_normalized():
    dataset, clustering = mixed_dataset_and_clustering()
    comps = compositions_by_id(cluster_compositions(dataset, clustering))
    shares = comps[1].pie_shares()
    assert sum(s for _, s in shares) == pytest.approx(1.0)
    assert shares[0][1] >= shares[-1][1]


def test_empty_clusters_skipped():
    dataset, _ = synthetic_dataset_and_clustering()
    labels = np.array([0, 0, 0, 0, 3, 3])  # clusters 1, 2 empty
    clustering = Clustering(
        centers=np.zeros((4, 2)), labels=labels, bic=0.0, inertia=0.0, n_iter=1
    )
    comps = cluster_compositions(dataset, clustering)
    assert [c.cluster_id for c in comps] == [0, 3]
