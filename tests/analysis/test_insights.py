"""Tests for per-benchmark insights (section 4.2 helpers)."""

import numpy as np
import pytest

from repro.analysis import (
    benchmark_profile,
    homogeneity,
    shared_clusters,
    unique_fraction_of_benchmark,
)
from repro.core import PhaseCharacterization, ProminentPhases, WorkloadDataset
from repro.mica import N_FEATURES
from repro.stats import Clustering


@pytest.fixture
def fake_result():
    suites = np.array(["a"] * 4 + ["b"] * 4)
    benchmarks = np.array(["x", "x", "x", "y", "z", "z", "w", "w"])
    dataset = WorkloadDataset(
        features=np.zeros((8, N_FEATURES)),
        suites=suites,
        benchmarks=benchmarks,
        interval_indices=np.arange(8, dtype=np.int64),
    )
    # a/x: clusters {0, 0, 1}; a/y: {1}; b/z: {1, 2}; b/w: {3, 3}
    labels = np.array([0, 0, 1, 1, 1, 2, 3, 3])
    clustering = Clustering(
        centers=np.zeros((4, 2)),
        labels=labels,
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    prominent = ProminentPhases(
        cluster_ids=np.array([1, 0]),
        weights=np.array([3 / 8, 2 / 8]),
        representative_rows=np.array([2, 0]),
    )
    return PhaseCharacterization(
        dataset=dataset,
        space=np.zeros((8, 2)),
        n_components=2,
        explained_variance=1.0,
        clustering=clustering,
        prominent=prominent,
        key_characteristics=None,
        ga_result=None,
    )


def test_profile_fractions(fake_result):
    p = benchmark_profile(fake_result, "a", "x")
    assert p.cluster_fractions[0] == (0, pytest.approx(2 / 3))
    assert p.cluster_fractions[1] == (1, pytest.approx(1 / 3))


def test_profile_unknown_benchmark(fake_result):
    with pytest.raises(KeyError):
        benchmark_profile(fake_result, "a", "nope")


def test_prominent_phase_count_threshold(fake_result):
    p = benchmark_profile(fake_result, "a", "x")
    assert p.prominent_phase_count(threshold=0.5) == 1
    assert p.prominent_phase_count(threshold=0.2) == 2


def test_homogeneity(fake_result):
    assert homogeneity(fake_result, "b", "w") == pytest.approx(1.0)
    assert homogeneity(fake_result, "a", "x") == pytest.approx(2 / 3)


def test_shared_clusters(fake_result):
    # a/x and b/z both touch cluster 1.
    assert shared_clusters(fake_result, ("a", "x"), ("b", "z")) == [1]
    # a/x and b/w share nothing.
    assert shared_clusters(fake_result, ("a", "x"), ("b", "w")) == []


def test_unique_fraction_of_benchmark(fake_result):
    # Cluster 0 is a-only; cluster 1 contains suite b too.
    assert unique_fraction_of_benchmark(fake_result, "a", "x") == pytest.approx(2 / 3)
    # b/w lives entirely in the b-only cluster 3.
    assert unique_fraction_of_benchmark(fake_result, "b", "w") == pytest.approx(1.0)
    # a/y lives entirely in the shared cluster 1.
    assert unique_fraction_of_benchmark(fake_result, "a", "y") == 0.0
