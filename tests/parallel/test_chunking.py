"""Tests for deterministic work-splitting."""

import pytest

from repro.parallel import chunk_bounds, chunk_items


def test_balanced_split_covers_range():
    bounds = chunk_bounds(10, n_chunks=3)
    assert bounds == [(0, 4), (4, 7), (7, 10)]


def test_balanced_split_sizes_differ_by_at_most_one():
    for n_items in (1, 7, 16, 100):
        for n_chunks in (1, 2, 3, 7, 16):
            bounds = chunk_bounds(n_items, n_chunks=n_chunks)
            sizes = [stop - start for start, stop in bounds]
            assert sum(sizes) == n_items
            assert max(sizes) - min(sizes) <= 1
            # Contiguous and ordered.
            assert bounds[0][0] == 0
            assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))


def test_n_chunks_clipped_to_items():
    assert len(chunk_bounds(3, n_chunks=10)) == 3


def test_fixed_chunk_size():
    assert chunk_bounds(7, chunk_size=3) == [(0, 3), (3, 6), (6, 7)]


def test_empty_input():
    assert chunk_bounds(0, n_chunks=4) == []
    assert chunk_bounds(0, chunk_size=4) == []


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        chunk_bounds(-1, n_chunks=2)
    with pytest.raises(ValueError):
        chunk_bounds(5)
    with pytest.raises(ValueError):
        chunk_bounds(5, n_chunks=2, chunk_size=2)


def test_chunk_items_preserves_order():
    assert chunk_items(list("abcdefg"), chunk_size=3) == [
        ["a", "b", "c"],
        ["d", "e", "f"],
        ["g"],
    ]
