"""Tests for per-task seed streams."""

import pytest

from repro.parallel import generator_from_seed, task_generator, task_seed, task_seeds


def test_seeds_are_prefix_stable():
    # Growing the fan-out leaves earlier task streams unchanged — the
    # property that makes k-means restarts independent of restart count.
    assert task_seeds("s", 7, 3) == task_seeds("s", 7, 8)[:3]


def test_seeds_distinct_across_tasks_roots_and_streams():
    seeds = set(task_seeds("a", 1, 100))
    seeds |= set(task_seeds("a", 2, 100))
    seeds |= set(task_seeds("b", 1, 100))
    assert len(seeds) == 300


def test_seeds_are_deterministic():
    assert task_seed("stream", 42, 5) == task_seed("stream", 42, 5)


def test_generator_matches_seed_roundtrip():
    g1 = task_generator("s", 3, 1)
    g2 = generator_from_seed(task_seed("s", 3, 1))
    assert (g1.integers(0, 1 << 30, size=16) == g2.integers(0, 1 << 30, size=16)).all()


def test_rejects_negative_count():
    with pytest.raises(ValueError):
        task_seeds("s", 0, -1)
