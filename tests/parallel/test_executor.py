"""Tests for the executor backends: ordering, errors, fallback."""

import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerError,
    effective_n_jobs,
    fork_available,
    get_executor,
)
from repro.parallel import executor as executor_module


def _square(payload, task):
    return payload * task * task


def _fail_on_three(payload, task):
    if task == 3:
        raise RuntimeError("kaboom")
    return task


ALL_BACKENDS = [
    SerialExecutor(),
    ThreadExecutor(n_jobs=4),
    pytest.param(
        ProcessExecutor(n_jobs=4),
        marks=pytest.mark.skipif(not fork_available(), reason="no fork"),
    ),
]


@pytest.mark.parametrize("ex", ALL_BACKENDS)
def test_map_preserves_submission_order(ex):
    assert ex.map(_square, range(20), payload=2) == [2 * i * i for i in range(20)]


@pytest.mark.parametrize("ex", ALL_BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 3, 50])
def test_chunked_map_reassembles_in_order(ex, chunk_size):
    out = ex.map(_square, range(10), payload=1, chunk_size=chunk_size)
    assert out == [i * i for i in range(10)]


@pytest.mark.parametrize("ex", ALL_BACKENDS)
def test_worker_error_carries_task_label(ex):
    labels = [f"SPECint2006/bench{i}" for i in range(6)]
    with pytest.raises(WorkerError) as err:
        ex.map(_fail_on_three, range(6), labels=labels)
    assert err.value.label == "SPECint2006/bench3"
    assert "kaboom" in str(err.value)
    assert "RuntimeError" in err.value.details


@pytest.mark.parametrize("ex", ALL_BACKENDS)
def test_on_result_streams_in_order(ex):
    seen = []
    ex.map(_square, range(8), payload=1, on_result=lambda i, r: seen.append((i, r)))
    assert seen == [(i, i * i) for i in range(8)]


@pytest.mark.parametrize("ex", ALL_BACKENDS)
def test_empty_task_list(ex):
    assert ex.map(_square, [], payload=1) == []


def test_map_rejects_mismatched_labels():
    with pytest.raises(ValueError):
        SerialExecutor().map(_square, range(3), payload=1, labels=["only-one"])


def test_map_rejects_bad_chunk_size():
    with pytest.raises(ValueError):
        SerialExecutor().map(_square, range(3), payload=1, chunk_size=0)


def test_n_jobs_one_is_always_serial():
    for backend in ("auto", "serial", "thread", "process"):
        assert isinstance(get_executor(backend, 1), SerialExecutor)


def test_backend_selection():
    assert isinstance(get_executor("serial", 8), SerialExecutor)
    assert isinstance(get_executor("thread", 8), ThreadExecutor)
    if fork_available():
        assert isinstance(get_executor("process", 8), ProcessExecutor)
        assert isinstance(get_executor("auto", 8), ProcessExecutor)


def test_process_backend_falls_back_to_serial_without_fork(monkeypatch):
    monkeypatch.setattr(executor_module, "fork_available", lambda: False)
    assert isinstance(executor_module.get_executor("process", 8), SerialExecutor)
    # "auto" degrades to threads, which still parallelize without fork.
    assert isinstance(executor_module.get_executor("auto", 8), ThreadExecutor)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        get_executor("gpu", 2)


def test_effective_n_jobs():
    assert effective_n_jobs(3) == 3
    assert effective_n_jobs(None) >= 1
    assert effective_n_jobs(-1) == effective_n_jobs(None)
    with pytest.raises(ValueError):
        effective_n_jobs(0)
    with pytest.raises(ValueError):
        effective_n_jobs(-2)


def test_executor_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ThreadExecutor(n_jobs=0)


def test_thread_results_match_serial():
    serial = SerialExecutor().map(_square, range(50), payload=3)
    threaded = ThreadExecutor(n_jobs=4).map(_square, range(50), payload=3, chunk_size=7)
    assert serial == threaded


@pytest.mark.skipif(not fork_available(), reason="no fork")
def test_process_results_match_serial():
    serial = SerialExecutor().map(_square, range(50), payload=3)
    forked = ProcessExecutor(n_jobs=4).map(_square, range(50), payload=3, chunk_size=7)
    assert serial == forked
