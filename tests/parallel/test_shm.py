"""Shared-memory ndarray handles: lifecycle, pickling, fan-out identity."""

import pickle

import numpy as np
import pytest

from repro.parallel import (
    ProcessExecutor,
    SharedNDArray,
    as_ndarray,
    dispose_shared,
    fork_available,
    share_array,
    shared_memory_available,
)
from repro.parallel.shm import _untrack

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)


def _data():
    return np.arange(24, dtype=np.float64).reshape(6, 4) * 0.5


def test_from_array_round_trip():
    data = _data()
    shared = SharedNDArray.from_array(data)
    try:
        assert shared.shape == (6, 4)
        assert shared.dtype == np.float64
        assert len(shared) == 6
        np.testing.assert_array_equal(shared.array, data)
        # The shared view is a copy: mutating the source changes nothing.
        data[0, 0] = -1.0
        assert shared.array[0, 0] == 0.0
    finally:
        shared.dispose()


def test_shared_view_is_read_only():
    shared = SharedNDArray.from_array(_data())
    try:
        with pytest.raises(ValueError):
            shared.array[0, 0] = 99.0
    finally:
        shared.dispose()


def test_pickles_to_lazy_handle():
    shared = SharedNDArray.from_array(_data())
    try:
        blob = pickle.dumps(shared)
        # The handle is metadata only — far smaller than the 192-byte
        # payload it stands for would pickle to.
        handle = pickle.loads(blob)
        assert handle.name == shared.name
        assert handle.shape == shared.shape
        assert handle.dtype == shared.dtype
        assert handle._array is None  # nothing mapped yet
        np.testing.assert_array_equal(handle.array, shared.array)
        handle.close()
    finally:
        shared.dispose()


def test_dispose_unlinks_the_block():
    shared = SharedNDArray.from_array(_data())
    handle = pickle.loads(pickle.dumps(shared))
    shared.dispose()
    with pytest.raises(FileNotFoundError):
        _ = handle.array


def test_attach_after_owner_unlink_keeps_existing_mapping():
    shared = SharedNDArray.from_array(_data())
    handle = pickle.loads(pickle.dumps(shared))
    view = handle.array  # mapped before the owner unlinks
    shared.dispose()
    try:
        assert view[1, 1] == 2.5  # POSIX: mappings survive the unlink
    finally:
        handle.close()


def test_unlink_requires_ownership():
    shared = SharedNDArray.from_array(_data())
    handle = pickle.loads(pickle.dumps(shared))
    try:
        with pytest.raises(RuntimeError):
            handle.unlink()
    finally:
        handle.close()
        shared.dispose()


def test_share_array_falls_back_for_empty_arrays():
    empty = np.empty((0, 4))
    assert share_array(empty) is empty
    dispose_shared(empty)  # no-op, must not raise


def test_as_ndarray_passthrough():
    data = _data()
    assert as_ndarray(data) is data
    shared = share_array(data)
    try:
        assert isinstance(shared, SharedNDArray)
        np.testing.assert_array_equal(as_ndarray(shared), data)
    finally:
        dispose_shared(shared)


def test_untrack_tolerates_unknown_names():
    _untrack("/repro-shm-never-registered")


def _sum_row(payload, row):
    arr = as_ndarray(payload)
    return float(arr[row].sum())


def test_process_fanout_reads_shared_payload():
    if not fork_available():
        pytest.skip("no fork")
    data = _data()
    shared = share_array(data)
    try:
        results = ProcessExecutor(n_jobs=3).map(
            _sum_row, range(len(data)), payload=shared
        )
    finally:
        dispose_shared(shared)
    assert results == [float(row.sum()) for row in data]
