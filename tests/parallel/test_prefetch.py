"""Tests for the pipelined prefetch iterator."""

import threading
import time

import pytest

from repro.obs import observe
from repro.parallel import prefetch_iter


def test_preserves_order_and_values():
    for depth in (1, 2, 7, 100):
        assert list(prefetch_iter(iter(range(25)), depth)) == list(range(25))


def test_depth_zero_is_inline():
    # No thread: the source is consumed lazily on the caller's thread.
    consumed = []

    def source():
        for i in range(5):
            consumed.append(i)
            yield i

    it = prefetch_iter(source(), 0)
    assert consumed == []
    assert next(it) == 0
    assert consumed == [0]
    assert list(it) == [1, 2, 3, 4]


def test_negative_depth_is_inline():
    assert list(prefetch_iter(iter([1, 2]), -3)) == [1, 2]


def test_empty_source():
    assert list(prefetch_iter(iter([]), 3)) == []


def test_tuple_items_survive():
    # Payloads that are themselves tuples must not be mistaken for the
    # tagged control entries.
    items = [("item", 1), ("error", 2), (None, None)]
    assert list(prefetch_iter(iter(items), 2)) == items


def test_producer_exception_reaches_consumer():
    def source():
        yield 1
        yield 2
        raise RuntimeError("meter blew up")

    it = prefetch_iter(source(), 2)
    assert next(it) == 1
    assert next(it) == 2
    with pytest.raises(RuntimeError, match="meter blew up"):
        next(it)


def test_early_close_stops_producer():
    started = threading.active_count()
    produced = []

    def source():
        for i in range(10_000):
            produced.append(i)
            yield i

    it = prefetch_iter(source(), 2)
    assert next(it) == 0
    it.close()
    deadline = time.monotonic() + 5.0
    while threading.active_count() > started and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= started
    # Bounded lookahead: the producer never ran ahead of the queue.
    assert len(produced) <= 10


def test_bounded_lookahead():
    produced = []

    def source():
        for i in range(100):
            produced.append(i)
            yield i

    it = prefetch_iter(source(), 3)
    assert next(it) == 0
    # Give the producer time to fill the queue as far as it ever can:
    # depth waiting + one in hand.
    time.sleep(0.2)
    high_water = len(produced)
    assert high_water <= 5
    assert list(it) == list(range(1, 100))


def test_counts_prefetched_batches():
    with observe() as ob:
        assert list(prefetch_iter(iter(range(8)), 2)) == list(range(8))
    assert ob.metrics.counter_value("prefetch.batches") == 8
