"""Tests for address-stream models."""

import numpy as np
import pytest

from repro.synth import (
    GatherStream,
    PointerChainStream,
    RandomStream,
    SequentialStream,
    StackStream,
    StridedStream,
    generator,
)


@pytest.fixture
def rng():
    return generator("streams-test")


def test_sequential_stream_strides(rng):
    s = SequentialStream(base=1 << 20, stride=8, region_bytes=1 << 16)
    addrs = s.addresses(100, rng)
    diffs = np.diff(addrs)
    # All strides are +8 except possibly one wrap-around.
    assert np.count_nonzero(diffs != 8) <= 1


def test_sequential_stream_stays_in_region(rng):
    base = 1 << 20
    s = SequentialStream(base=base, stride=64, region_bytes=4096)
    addrs = s.addresses(1000, rng)
    assert addrs.min() >= base
    assert addrs.max() < base + 4096


def test_strided_stream_long_strides(rng):
    s = StridedStream(base=0, stride=4096, region_bytes=1 << 22)
    addrs = s.addresses(50, rng)
    diffs = np.diff(addrs)
    assert np.count_nonzero(diffs != 4096) <= 1


def test_random_stream_alignment_and_bounds(rng):
    base = 1 << 24
    s = RandomStream(base=base, working_set_bytes=1 << 12, align=8)
    addrs = s.addresses(500, rng)
    assert ((addrs - base) % 8 == 0).all()
    assert addrs.min() >= base
    assert addrs.max() < base + (1 << 12)


def test_pointer_chain_covers_all_nodes(rng):
    s = PointerChainStream(base=0, n_nodes=32, node_bytes=64, layout_seed=5)
    addrs = s.addresses(32, rng)
    assert len(np.unique(addrs)) == 32


def test_pointer_chain_layout_fixed_across_calls(rng):
    s = PointerChainStream(base=0, n_nodes=16, node_bytes=64, layout_seed=5)
    a = set(s.addresses(16, generator("x", 1)).tolist())
    b = set(s.addresses(16, generator("x", 2)).tolist())
    assert a == b  # same nodes, different entry point


def test_pointer_chain_rejects_bad_node_count():
    with pytest.raises(ValueError):
        PointerChainStream(base=0, n_nodes=0)


def test_gather_stream_cluster_structure(rng):
    s = GatherStream(base=0, working_set_bytes=1 << 20, elem_bytes=8, cluster_len=4)
    addrs = s.addresses(64, rng)
    diffs = np.abs(np.diff(addrs))
    # Within clusters the stride is elem_bytes; between clusters it is
    # usually large.  At least half the diffs must be the small stride.
    assert np.count_nonzero(diffs == 8) >= len(diffs) // 2


def test_gather_stream_zero_length(rng):
    s = GatherStream(base=0)
    assert len(s.addresses(0, rng)) == 0


def test_stack_stream_small_footprint(rng):
    s = StackStream(base=1 << 16, frame_bytes=128)
    addrs = s.addresses(200, rng)
    assert addrs.max() - addrs.min() < 128


def test_streams_reject_negative_count(rng):
    for s in (
        SequentialStream(base=0),
        StridedStream(base=0),
        RandomStream(base=0),
        StackStream(base=0),
    ):
        with pytest.raises(ValueError):
            s.addresses(-1, rng)


def test_all_streams_return_int64(rng):
    streams = [
        SequentialStream(base=0),
        StridedStream(base=0),
        RandomStream(base=0),
        PointerChainStream(base=0, n_nodes=8),
        GatherStream(base=0),
        StackStream(base=0),
    ]
    for s in streams:
        assert s.addresses(5, rng).dtype == np.int64
