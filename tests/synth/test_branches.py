"""Tests for branch-outcome models."""

import numpy as np
import pytest

from repro.synth import (
    BiasedRandomBranch,
    LoopBranch,
    MarkovBranch,
    PatternBranch,
    generator,
)


@pytest.fixture
def rng():
    return generator("branches-test")


def test_loop_branch_taken_rate(rng):
    b = LoopBranch(trip=8)
    out = b.outcomes(8000, rng)
    # taken (trip-1)/trip of the time
    assert abs(out.mean() - 7 / 8) < 0.01


def test_loop_branch_exact_period(rng):
    b = LoopBranch(trip=4)
    out = b.outcomes(16, rng)
    # Exactly one not-taken per 4 outcomes.
    assert (~out).sum() == 4


def test_loop_branch_trip_one_never_taken(rng):
    b = LoopBranch(trip=1)
    out = b.outcomes(10, rng)
    assert not out.any()


def test_loop_branch_rejects_bad_trip():
    with pytest.raises(ValueError):
        LoopBranch(trip=0)


def test_biased_random_rate(rng):
    b = BiasedRandomBranch(p=0.3)
    out = b.outcomes(20000, rng)
    assert abs(out.mean() - 0.3) < 0.02


def test_biased_random_rejects_bad_p():
    with pytest.raises(ValueError):
        BiasedRandomBranch(p=1.5)


def test_pattern_branch_is_periodic(rng):
    pattern = (True, False, True, True)
    b = PatternBranch(pattern=pattern)
    out = b.outcomes(40, rng)
    # Any rotation of the pattern tiles the output.
    as_int = out.astype(int)
    for k in range(4, 40):
        assert as_int[k] == as_int[k - 4]


def test_pattern_branch_rejects_empty():
    with pytest.raises(ValueError):
        PatternBranch(pattern=())


def test_markov_branch_transition_rate(rng):
    b = MarkovBranch(p_switch=0.2)
    out = b.outcomes(20000, rng)
    transitions = np.count_nonzero(out[1:] != out[:-1]) / (len(out) - 1)
    assert abs(transitions - 0.2) < 0.02


def test_markov_branch_zero_switch_is_constant(rng):
    b = MarkovBranch(p_switch=0.0)
    out = b.outcomes(100, rng)
    assert len(np.unique(out)) == 1


def test_markov_branch_rejects_bad_p():
    with pytest.raises(ValueError):
        MarkovBranch(p_switch=-0.1)


def test_models_reject_negative_count(rng):
    for model in (LoopBranch(), BiasedRandomBranch(), PatternBranch(), MarkovBranch()):
        with pytest.raises(ValueError):
            model.outcomes(-1, rng)


def test_models_zero_length(rng):
    for model in (LoopBranch(), BiasedRandomBranch(), PatternBranch(), MarkovBranch()):
        assert len(model.outcomes(0, rng)) == 0
