"""Tests for SyntheticProgram interval generation."""

import numpy as np
import pytest

from repro.isa import OpClass
from repro.synth import (
    Phase,
    PhaseSchedule,
    SyntheticProgram,
    matrix_kernel,
    pointer_chase_kernel,
)


@pytest.fixture
def program():
    schedule = PhaseSchedule(
        [
            Phase(matrix_kernel(seed=1), 0.5),
            Phase(pointer_chase_kernel(seed=2), 0.5),
        ]
    )
    return SyntheticProgram("two-phase", schedule, n_intervals=10, seed=42)


def test_interval_has_exact_length(program):
    t = program.interval_trace(0, 777)
    assert len(t) == 777
    t.validate()


def test_interval_index_bounds(program):
    with pytest.raises(ValueError):
        program.interval_trace(10, 100)
    with pytest.raises(ValueError):
        program.interval_trace(-1, 100)


def test_interval_size_must_be_positive(program):
    with pytest.raises(ValueError):
        program.interval_trace(0, 0)


def test_intervals_are_deterministic(program):
    a = program.interval_trace(3, 500)
    b = program.interval_trace(3, 500)
    assert (a.addr == b.addr).all()
    assert (a.pc == b.pc).all()
    assert (a.taken == b.taken).all()


def test_intervals_independent_of_generation_order(program):
    direct = program.interval_trace(7, 400)
    program.interval_trace(0, 400)
    program.interval_trace(4, 400)
    again = program.interval_trace(7, 400)
    assert (direct.addr == again.addr).all()


def test_phase_determines_interval_content(program):
    # Interval 0 is in the matrix phase (FP), interval 9 in the
    # pointer-chase phase (no FP).
    first = program.interval_trace(0, 600)
    last = program.interval_trace(9, 600)
    fp_ops = (int(OpClass.FADD), int(OpClass.FMUL), int(OpClass.FDIV), int(OpClass.FSQRT))
    assert np.isin(first.op, fp_ops).any()
    assert not np.isin(last.op, fp_ops).any()


def test_boundary_interval_mixes_phases(program):
    # With 10 intervals and a 50/50 split, the boundary sits exactly at
    # interval 5's start; use 4 intervals to land inside one.
    schedule = program.schedule
    prog = SyntheticProgram("straddle", schedule, n_intervals=3, seed=1)
    mid = prog.interval_trace(1, 900)  # covers [900, 1800); boundary at 1350
    fp_ops = (int(OpClass.FADD), int(OpClass.FMUL))
    has_fp = np.isin(mid.op, fp_ops)
    assert has_fp.any() and not has_fp.all()


def test_rejects_bad_interval_count():
    schedule = PhaseSchedule([Phase(matrix_kernel(seed=1), 1.0)])
    with pytest.raises(ValueError):
        SyntheticProgram("bad", schedule, n_intervals=0, seed=1)


def test_repr_mentions_name(program):
    assert "two-phase" in repr(program)


def test_iter_interval_traces_matches_random_access(program):
    indices = np.array([3, 0, 7, 3, 9])
    streamed = list(program.iter_interval_traces(indices, 500))
    assert len(streamed) == len(indices)
    for idx, trace in zip(indices, streamed):
        expected = program.interval_trace(int(idx), 500)
        assert len(trace) == 500
        np.testing.assert_array_equal(trace.op, expected.op)
        np.testing.assert_array_equal(trace.addr, expected.addr)
        np.testing.assert_array_equal(trace.pc, expected.pc)
        np.testing.assert_array_equal(trace.taken, expected.taken)


def test_iter_interval_traces_is_lazy(program):
    iterator = program.iter_interval_traces(np.array([0, 99999]), 100)
    first = next(iterator)  # bad index not touched yet
    assert len(first) == 100
    with pytest.raises(ValueError):
        next(iterator)
