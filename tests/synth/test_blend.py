"""Tests for BlendKernel composition."""

import numpy as np
import pytest

from repro.isa import OpClass
from repro.synth import BlendKernel, generator, matrix_kernel, pointer_chase_kernel


@pytest.fixture
def parts():
    return [
        (matrix_kernel(seed=1), 1.0),
        (pointer_chase_kernel(seed=2), 1.0),
    ]


def test_blend_generates_exact_count(parts):
    b = BlendKernel("b", parts, chunk=128)
    t = b.generate(1000, generator("blend", 1))
    assert len(t) == 1000
    t.validate()


def test_blend_contains_both_behaviours(parts):
    b = BlendKernel("b", parts, chunk=128)
    t = b.generate(4000, generator("blend", 2))
    fp = np.isin(t.op, (int(OpClass.FADD), int(OpClass.FMUL)))
    assert fp.any() and not fp.all()


def test_blend_weights_are_respected():
    heavy = BlendKernel(
        "heavy",
        [(matrix_kernel(seed=1), 9.0), (pointer_chase_kernel(seed=2), 1.0)],
        chunk=64,
    )
    t = heavy.generate(8000, generator("blend", 3))
    fp_frac = np.isin(t.op, (int(OpClass.FADD), int(OpClass.FMUL))).mean()
    light = BlendKernel(
        "light",
        [(matrix_kernel(seed=1), 1.0), (pointer_chase_kernel(seed=2), 9.0)],
        chunk=64,
    )
    t2 = light.generate(8000, generator("blend", 3))
    fp_frac2 = np.isin(t2.op, (int(OpClass.FADD), int(OpClass.FMUL))).mean()
    assert fp_frac > fp_frac2


def test_blend_rejects_empty_parts():
    with pytest.raises(ValueError):
        BlendKernel("b", [])


def test_blend_rejects_nonpositive_weights():
    with pytest.raises(ValueError):
        BlendKernel("b", [(matrix_kernel(seed=1), 0.0)])


def test_blend_rejects_bad_chunk(parts):
    with pytest.raises(ValueError):
        BlendKernel("b", parts, chunk=0)


def test_blend_zero_length(parts):
    b = BlendKernel("b", parts)
    assert len(b.generate(0, generator("blend"))) == 0


def test_blend_deterministic(parts):
    b = BlendKernel("b", parts, chunk=100)
    t1 = b.generate(1000, generator("det", 1))
    t2 = b.generate(1000, generator("det", 1))
    assert (t1.op == t2.op).all() and (t1.addr == t2.addr).all()
