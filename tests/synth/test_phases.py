"""Tests for phase schedules."""

import pytest

from repro.synth import Phase, PhaseSchedule, streaming_kernel


@pytest.fixture
def kernels():
    return [streaming_kernel(seed=i) for i in range(3)]


def test_schedule_normalizes_fractions(kernels):
    s = PhaseSchedule([Phase(kernels[0], 2.0), Phase(kernels[1], 6.0)])
    fracs = [p.fraction for p in s.phases]
    assert abs(sum(fracs) - 1.0) < 1e-12
    assert abs(fracs[0] - 0.25) < 1e-12


def test_schedule_rejects_empty():
    with pytest.raises(ValueError):
        PhaseSchedule([])


def test_phase_rejects_nonpositive_fraction(kernels):
    with pytest.raises(ValueError):
        Phase(kernels[0], 0.0)


def test_segments_partition_total(kernels):
    s = PhaseSchedule([Phase(kernels[0], 0.3), Phase(kernels[1], 0.7)])
    segs = s.segments(1000)
    assert segs[0][0] == 0
    assert segs[-1][1] == 1000
    for (a, b, _), (c, d, _) in zip(segs, segs[1:]):
        assert b == c
    assert segs[0][1] == 300


def test_repeat_interleaves_phases(kernels):
    s = PhaseSchedule([Phase(kernels[0], 0.5), Phase(kernels[1], 0.5)], repeat=2)
    segs = s.segments(1000)
    assert len(segs) == 4
    order = [seg[2] for seg in segs]
    assert order == [kernels[0], kernels[1], kernels[0], kernels[1]]
    assert len(s) == 4


def test_repeat_rejects_nonpositive(kernels):
    with pytest.raises(ValueError):
        PhaseSchedule([Phase(kernels[0], 1.0)], repeat=0)


def test_overlapping_clips_to_window(kernels):
    s = PhaseSchedule([Phase(kernels[0], 0.5), Phase(kernels[1], 0.5)])
    over = s.overlapping(1000, 400, 600)
    assert len(over) == 2
    assert over[0] == (400, 500, kernels[0])
    assert over[1] == (500, 600, kernels[1])


def test_overlapping_single_phase_window(kernels):
    s = PhaseSchedule([Phase(kernels[0], 0.5), Phase(kernels[1], 0.5)])
    over = s.overlapping(1000, 0, 100)
    assert over == [(0, 100, kernels[0])]


def test_overlapping_rejects_bad_window(kernels):
    s = PhaseSchedule([Phase(kernels[0], 1.0)])
    with pytest.raises(ValueError):
        s.overlapping(1000, 500, 400)
    with pytest.raises(ValueError):
        s.overlapping(1000, 0, 2000)


def test_tiny_fractions_never_lose_instructions(kernels):
    s = PhaseSchedule(
        [Phase(kernels[0], 0.999), Phase(kernels[1], 0.001)]
    )
    segs = s.segments(100)
    covered = sum(b - a for a, b, _ in segs)
    assert covered == 100
