"""Behavioural tests for the 13 kernel families.

Each family must produce traces whose measured characteristics match
its documented intent — these tests pin the domain semantics the suite
models rely on.
"""

import pytest

from repro.mica import (
    measure_branch,
    measure_footprint,
    measure_ilp,
    measure_instruction_mix,
    measure_strides,
)
from repro.synth import (
    branchy_kernel,
    compress_kernel,
    dsp_kernel,
    dynprog_kernel,
    fsm_kernel,
    generator,
    hashing_kernel,
    matrix_kernel,
    pointer_chase_kernel,
    sorting_kernel,
    sparse_kernel,
    stencil_kernel,
    streaming_kernel,
    string_match_kernel,
)

N = 8000


def trace_of(kernel, tag="fam"):
    t = kernel.generate(N, generator(tag))
    t.validate()
    return t


ALL_FACTORIES = [
    branchy_kernel,
    compress_kernel,
    dsp_kernel,
    dynprog_kernel,
    fsm_kernel,
    hashing_kernel,
    matrix_kernel,
    pointer_chase_kernel,
    sorting_kernel,
    sparse_kernel,
    stencil_kernel,
    streaming_kernel,
    string_match_kernel,
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_family_generates_valid_traces(factory):
    trace_of(factory(seed=11))


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_family_is_deterministic_per_seed(factory):
    k = factory(seed=7)
    a = k.generate(500, generator("d", 1))
    b = k.generate(500, generator("d", 1))
    assert (a.addr == b.addr).all() and (a.taken == b.taken).all()


def test_streaming_is_fp_heavy_when_fp():
    mix = measure_instruction_mix(trace_of(streaming_kernel(seed=1, fp=True)))
    assert mix["mix_fp_arith"] > 0.3
    assert mix["mix_int_mul"] == 0.0


def test_streaming_int_variant_has_no_fp():
    mix = measure_instruction_mix(trace_of(streaming_kernel(seed=1, fp=False)))
    assert mix["mix_fp_arith"] == 0.0


def test_streaming_short_global_strides():
    s = measure_strides(trace_of(streaming_kernel(seed=2, unroll=8)))
    assert s["stride_gl_le64"] > 0.5


def test_streaming_predictable_branches():
    b = measure_branch(trace_of(streaming_kernel(seed=3)), sample_branches=500)
    assert b["ppm_gag_h12"] < 0.05


def test_stencil_mixes_short_and_row_strides():
    s = measure_strides(trace_of(stencil_kernel(seed=4, row_bytes=8192)))
    # Local strides of the row streams are small; the column streams
    # produce strides beyond 4KB, so the local-load CDF at 4K is < 1.
    assert s["stride_ll_le4096"] < 1.0
    assert s["stride_ll_le64"] > 0.0


def test_pointer_chase_low_ilp_vs_matrix():
    chase = measure_ilp(trace_of(pointer_chase_kernel(seed=5)), sample_instructions=1000)
    dense = measure_ilp(trace_of(matrix_kernel(seed=5)), sample_instructions=1000)
    assert chase["ilp_w64"] < dense["ilp_w64"]


def test_pointer_chase_poor_branch_predictability():
    b = measure_branch(
        trace_of(pointer_chase_kernel(seed=6, branch_entropy=0.5)),
        sample_branches=800,
    )
    assert b["ppm_gag_h12"] > 0.1


def test_pointer_chase_large_data_footprint():
    small = measure_footprint(trace_of(pointer_chase_kernel(seed=7, n_nodes=1 << 8)))
    large = measure_footprint(trace_of(pointer_chase_kernel(seed=7, n_nodes=1 << 16)))
    assert large["foot_data_64b"] > small["foot_data_64b"]


def test_branchy_is_branch_dense():
    mix = measure_instruction_mix(trace_of(branchy_kernel(seed=8)))
    assert mix["mix_branch"] > 0.1


def test_branchy_large_instruction_footprint():
    few = measure_footprint(trace_of(branchy_kernel(seed=9, n_variants=1)))
    many = measure_footprint(trace_of(branchy_kernel(seed=9, n_variants=32)))
    assert many["foot_instr_64b"] > few["foot_instr_64b"]


def test_dsp_is_multiply_dense():
    mix = measure_instruction_mix(trace_of(dsp_kernel(seed=10)))
    assert mix["mix_mul"] > 0.15


def test_dsp_accumulators_raise_ilp():
    one = measure_ilp(trace_of(dsp_kernel(seed=11, accumulators=1)), sample_instructions=1000)
    eight = measure_ilp(trace_of(dsp_kernel(seed=11, accumulators=8)), sample_instructions=1000)
    assert eight["ilp_w64"] > one["ilp_w64"]


def test_string_match_integer_add_heavy():
    mix = measure_instruction_mix(trace_of(string_match_kernel(seed=12, adds_per_byte=8)))
    assert mix["mix_int_add"] > 0.3


def test_string_match_byte_local_strides():
    s = measure_strides(trace_of(string_match_kernel(seed=13, byte_stride=1)))
    assert s["stride_ll_le8"] > 0.5


def test_dynprog_is_cmov_heavy():
    mix = measure_instruction_mix(trace_of(dynprog_kernel(seed=14, cmov_per_cell=4)))
    assert mix["mix_cmov"] > 0.1


def test_dynprog_states_scale_work():
    k1 = dynprog_kernel(seed=15, states=1)
    k3 = dynprog_kernel(seed=15, states=3)
    assert len(k3.body) > len(k1.body)


def test_sorting_branches_are_hard():
    b = measure_branch(trace_of(sorting_kernel(seed=16)), sample_branches=800)
    assert b["ppm_pas_h12"] > 0.1


def test_hashing_multiplies_and_random_access():
    t = trace_of(hashing_kernel(seed=17))
    mix = measure_instruction_mix(t)
    assert mix["mix_int_mul"] > 0.02
    s = measure_strides(t)
    # Table probes are random over MBs: most load strides are huge.
    assert s["stride_gl_le64"] < 0.9


def test_matrix_high_fp_and_ilp():
    t = trace_of(matrix_kernel(seed=18, accumulators=6))
    mix = measure_instruction_mix(t)
    assert mix["mix_fp_arith"] > 0.3
    ilp = measure_ilp(t, sample_instructions=1000)
    assert ilp["ilp_w256"] > 10


def test_matrix_divides_show_up():
    mix = measure_instruction_mix(trace_of(matrix_kernel(seed=19, divides=4)))
    assert mix["mix_fp_div"] > 0.0
    assert mix["mix_fp_sqrt"] > 0.0


def test_compress_shift_heavy():
    mix = measure_instruction_mix(trace_of(compress_kernel(seed=20)))
    assert mix["mix_shift"] > 0.1


def test_fsm_logic_heavy_with_cmov():
    mix = measure_instruction_mix(trace_of(fsm_kernel(seed=21)))
    assert mix["mix_logic"] > 0.15
    assert mix["mix_cmov"] > 0.0


def test_sparse_mixed_stride_profile():
    s = measure_strides(trace_of(sparse_kernel(seed=22, cluster_len=12)))
    # Gathers produce a genuine mix: neither all-small nor all-large.
    assert 0.05 < s["stride_gl_le64"] < 0.95
    assert 0.05 < s["stride_ll_le64"] < 0.95


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (streaming_kernel, {"n_arrays": 0}),
        (stencil_kernel, {"points": 2}),
        (dynprog_kernel, {"states": 0}),
        (hashing_kernel, {"probes": 0}),
        (matrix_kernel, {"accumulators": 0}),
        (fsm_kernel, {"syntax_period": 1}),
        (branchy_kernel, {"n_branches": 0}),
    ],
)
def test_families_reject_bad_parameters(factory, kwargs):
    with pytest.raises(ValueError):
        factory(seed=1, **kwargs)
