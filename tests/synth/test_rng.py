"""Tests for deterministic seed derivation."""

from repro.synth import derive_seed, generator


def test_derive_seed_is_deterministic():
    assert derive_seed("a", 1, "b") == derive_seed("a", 1, "b")


def test_derive_seed_distinguishes_keys():
    assert derive_seed("a", 1) != derive_seed("a", 2)
    assert derive_seed("a", 1) != derive_seed("b", 1)


def test_derive_seed_key_order_matters():
    assert derive_seed("a", "b") != derive_seed("b", "a")


def test_derive_seed_is_63_bit_nonnegative():
    for keys in (("x",), ("y", 2, 3), (0,)):
        s = derive_seed(*keys)
        assert 0 <= s < 2**63


def test_derive_seed_no_separator_collisions():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed("ab", "c") != derive_seed("a", "bc")


def test_generator_streams_are_reproducible():
    a = generator("k", 7).random(5)
    b = generator("k", 7).random(5)
    assert (a == b).all()


def test_generator_streams_are_independent():
    a = generator("k", 7).random(5)
    b = generator("k", 8).random(5)
    assert (a != b).any()
