"""Tests for the kernel framework (Slot, BodyBuilder, Kernel)."""

import numpy as np
import pytest

from repro.isa import NO_ADDR, NO_REG, OpClass
from repro.synth import (
    BodyBuilder,
    Kernel,
    LoopBranch,
    SequentialStream,
    Slot,
    generator,
)


@pytest.fixture
def rng():
    return generator("kernel-base-test")


def simple_kernel(rng, *, n_variants=1):
    builder = BodyBuilder(rng)
    stream = SequentialStream(base=1 << 20, stride=8)
    builder.load(stream)
    builder.add(OpClass.IADD)
    builder.store(stream)
    builder.branch(LoopBranch(trip=4))
    return Kernel("simple", builder.slots, code_base=0x1000, n_variants=n_variants)


def test_slot_requires_stream_for_memory_ops():
    with pytest.raises(ValueError, match="address stream"):
        Slot(op=OpClass.LOAD)


def test_slot_rejects_stream_on_non_memory_op():
    with pytest.raises(ValueError, match="must not have an address stream"):
        Slot(op=OpClass.IADD, stream=SequentialStream(base=0))


def test_slot_requires_branch_model_for_branches():
    with pytest.raises(ValueError, match="branch model"):
        Slot(op=OpClass.BRANCH)


def test_slot_rejects_branch_model_on_alu_op():
    with pytest.raises(ValueError, match="must not have a branch model"):
        Slot(op=OpClass.IADD, branch=LoopBranch())


def test_builder_chain_frac_bounds(rng):
    with pytest.raises(ValueError):
        BodyBuilder(rng, chain_frac=1.5)


def test_builder_n_src_bounds(rng):
    builder = BodyBuilder(rng)
    with pytest.raises(ValueError):
        builder.add(OpClass.IADD, n_src=3)


def test_builder_store_has_no_destination(rng):
    builder = BodyBuilder(rng)
    slot = builder.store(SequentialStream(base=0))
    assert slot.dst == NO_REG


def test_builder_load_writes_destination(rng):
    builder = BodyBuilder(rng)
    slot = builder.load(SequentialStream(base=0))
    assert slot.dst != NO_REG


def test_kernel_rejects_empty_body():
    with pytest.raises(ValueError):
        Kernel("empty", [])


def test_kernel_generates_exact_count(rng):
    k = simple_kernel(rng)
    for n in (1, 3, 4, 5, 100, 101):
        t = k.generate(n, generator("g", n))
        assert len(t) == n
        t.validate()


def test_kernel_zero_instructions(rng):
    k = simple_kernel(rng)
    assert len(k.generate(0, generator("g"))) == 0


def test_kernel_rejects_negative_count(rng):
    k = simple_kernel(rng)
    with pytest.raises(ValueError):
        k.generate(-1, generator("g"))


def test_kernel_tiles_body_ops(rng):
    k = simple_kernel(rng)
    t = k.generate(8, generator("g"))
    expected = [OpClass.LOAD, OpClass.IADD, OpClass.STORE, OpClass.BRANCH] * 2
    assert t.op.tolist() == [int(o) for o in expected]


def test_kernel_memory_slots_have_addresses(rng):
    k = simple_kernel(rng)
    t = k.generate(40, generator("g"))
    mem = (t.op == OpClass.LOAD) | (t.op == OpClass.STORE)
    assert (t.addr[mem] != NO_ADDR).all()
    assert (t.addr[~mem] == NO_ADDR).all()


def test_kernel_single_variant_pcs_repeat(rng):
    k = simple_kernel(rng)
    t = k.generate(8, generator("g"))
    assert t.pc[0] == t.pc[4]
    assert len(np.unique(t.pc)) == 4


def test_kernel_variants_expand_instruction_footprint(rng):
    k1 = simple_kernel(generator("a"), n_variants=1)
    k8 = simple_kernel(generator("a"), n_variants=8)
    t1 = k1.generate(400, generator("g"))
    t8 = k8.generate(400, generator("g"))
    assert len(np.unique(t8.pc)) > len(np.unique(t1.pc))


def test_kernel_generation_is_deterministic(rng):
    k = simple_kernel(rng)
    a = k.generate(50, generator("same", 1))
    b = k.generate(50, generator("same", 1))
    assert (a.addr == b.addr).all()
    assert (a.taken == b.taken).all()


def test_kernel_call_slots_always_taken(rng):
    builder = BodyBuilder(rng)
    builder.call()
    builder.add(OpClass.IADD)
    k = Kernel("callish", builder.slots)
    t = k.generate(10, generator("g"))
    calls = t.op == OpClass.CALL
    assert t.taken[calls].all()


def test_kernel_partial_tail_matches_full_tiling_prefix(rng):
    # A length-n trace must be the exact prefix of the ceil-tiled trace:
    # the tail-repetition shortcut may skip materializing the full tiling
    # but must not change a single RNG draw or emitted value.
    k = simple_kernel(rng, n_variants=4)
    body_len = len(k.body)
    for n in (1, 3, 5, 9, 101):
        assert n % body_len != 0
        reps = -(-n // body_len)
        short = k.generate(n, generator("tail", n))
        full = k.generate(reps * body_len, generator("tail", n)).slice(0, n)
        for field in ("op", "src1", "src2", "dst", "addr", "pc", "taken"):
            got, want = getattr(short, field), getattr(full, field)
            assert np.array_equal(got, want), (n, field)
            assert got.dtype == want.dtype, (n, field)


def test_shared_stream_interleaves_in_program_order(rng):
    # Two loads sharing one sequential stream must see consecutive
    # addresses in program order.
    builder = BodyBuilder(rng)
    stream = SequentialStream(base=0, stride=8, region_bytes=1 << 20)
    builder.load(stream)
    builder.load(stream)
    k = Kernel("shared", builder.slots)
    t = k.generate(6, generator("g"))
    diffs = np.diff(t.addr)
    assert np.count_nonzero(diffs != 8) <= 1  # allow one wrap
