"""Property-based tests for the trace substrate.

Hypothesis generates random kernel parameters and schedule shapes; the
invariants — exact lengths, trace validity, determinism, partitioning —
must hold for all of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (
    Phase,
    PhaseSchedule,
    SyntheticProgram,
    generator,
    pointer_chase_kernel,
    streaming_kernel,
)

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 2**31),
    n_arrays=st.integers(1, 4),
    stride=st.sampled_from([1, 2, 4, 8, 16]),
    ops=st.integers(1, 12),
    unroll=st.integers(1, 8),
    trip=st.integers(1, 1024),
    chain=st.floats(0.0, 1.0),
    n=st.integers(1, 3000),
)
def test_streaming_kernel_always_valid(seed, n_arrays, stride, ops, unroll, trip, chain, n):
    k = streaming_kernel(
        seed=seed,
        n_arrays=n_arrays,
        stride=stride,
        ops_per_element=ops,
        unroll=unroll,
        trip=trip,
        chain_frac=chain,
    )
    t = k.generate(n, generator("prop", seed, n))
    assert len(t) == n
    t.validate()


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 2**31),
    nodes=st.integers(1, 1 << 14),
    fields=st.integers(1, 4),
    work=st.integers(0, 10),
    entropy=st.floats(0.0, 1.0),
    n=st.integers(1, 2000),
)
def test_pointer_chase_kernel_always_valid(seed, nodes, fields, work, entropy, n):
    k = pointer_chase_kernel(
        seed=seed,
        n_nodes=nodes,
        fields_per_node=fields,
        work_per_node=work,
        branch_entropy=entropy,
    )
    t = k.generate(n, generator("prop2", seed, n))
    assert len(t) == n
    t.validate()


@settings(**SETTINGS)
@given(
    fractions=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=6),
    total=st.integers(10, 100_000),
    repeat=st.integers(1, 4),
)
def test_schedule_segments_partition_any_total(fractions, total, repeat):
    kernels = [streaming_kernel(seed=i) for i in range(len(fractions))]
    schedule = PhaseSchedule(
        [Phase(k, f) for k, f in zip(kernels, fractions)], repeat=repeat
    )
    segments = schedule.segments(total)
    assert segments[0][0] == 0
    assert segments[-1][1] == total
    covered = 0
    for start, stop, _ in segments:
        assert stop > start
        assert start == covered
        covered = stop
    assert covered == total


@settings(**SETTINGS)
@given(
    n_intervals=st.integers(1, 50),
    size=st.integers(16, 2048),
    index_frac=st.floats(0.0, 1.0),
)
def test_program_interval_always_exact_and_deterministic(n_intervals, size, index_frac):
    schedule = PhaseSchedule(
        [
            Phase(streaming_kernel(seed=1), 0.5),
            Phase(pointer_chase_kernel(seed=2), 0.5),
        ]
    )
    program = SyntheticProgram("prop", schedule, n_intervals=n_intervals, seed=3)
    index = min(n_intervals - 1, int(index_frac * n_intervals))
    a = program.interval_trace(index, size)
    b = program.interval_trace(index, size)
    assert len(a) == size
    a.validate()
    assert np.array_equal(a.op, b.op)
    assert np.array_equal(a.addr, b.addr)
    assert np.array_equal(a.taken, b.taken)
