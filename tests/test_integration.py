"""End-to-end integration tests at small scale.

These run the full methodology over all 77 benchmarks (shared
session-scoped fixtures) and assert the paper's headline *shapes*:

* SPEC CPU2006 covers more of the workload space than CPU2000;
* the domain-specific suites cover a narrow slice and are less diverse;
* BioPerf exhibits by far the most unique behaviour;
* the two hmmer versions share a cluster;
* sjeng / lbm / sixtrack are near-homogeneous.

The same checks at paper scale are the benchmark harness's job.
"""

import numpy as np

from repro.analysis import (
    ClusterKind,
    benchmark_profile,
    cluster_compositions,
    clusters_to_cover,
    cumulative_coverage,
    group_by_kind,
    shared_clusters,
    suite_coverage,
    suite_uniqueness,
)
from repro.core import build_dataset
from repro.suites import (
    SUITE_ORDER,
    all_benchmarks,
)


def test_dataset_has_equal_weight_per_benchmark(small_dataset, small_config):
    keys, counts = np.unique(small_dataset.benchmark_keys, return_counts=True)
    assert len(keys) == 77
    assert (counts == small_config.intervals_per_benchmark).all()


def test_dataset_features_finite(small_dataset):
    assert np.isfinite(small_dataset.features).all()


def test_featurization_is_deterministic(small_config):
    benches = [b for b in all_benchmarks() if b.suite == "BMW"]
    a = build_dataset(benches, small_config)
    b = build_dataset(benches, small_config)
    assert np.array_equal(a.features, b.features)


def test_explained_variance_in_paper_regime(small_result):
    # Paper: retained PCs explain 85.4% of total variance.
    assert 0.6 < small_result.explained_variance <= 1.0


def test_prominent_coverage_substantial(small_result):
    # Paper: the 100 prominent phases cover 87.8%.
    assert small_result.prominent.coverage > 0.5


def test_cpu2006_covers_more_than_cpu2000(small_dataset, small_result):
    cov = suite_coverage(small_dataset, small_result.clustering, suites=SUITE_ORDER)
    assert cov["SPECint2006"] > cov["SPECint2000"]
    assert cov["SPECfp2006"] > cov["SPECfp2000"]


def test_domain_specific_suites_cover_less_than_cpu2006(small_dataset, small_result):
    cov = suite_coverage(small_dataset, small_result.clustering, suites=SUITE_ORDER)
    spec2006 = cov["SPECint2006"] + cov["SPECfp2006"]
    for suite in ("BMW", "MediaBenchII"):
        assert cov[suite] < spec2006


def test_bioperf_most_unique(small_dataset, small_result):
    uniq = suite_uniqueness(small_dataset, small_result.clustering, suites=SUITE_ORDER)
    for suite in SUITE_ORDER:
        if suite != "BioPerf":
            assert uniq["BioPerf"] > uniq[suite], suite


def test_bmw_and_mediabench_substantially_less_unique(small_dataset, small_result):
    uniq = suite_uniqueness(small_dataset, small_result.clustering, suites=SUITE_ORDER)
    assert uniq["BMW"] <= uniq["BioPerf"] / 2
    assert uniq["MediaBenchII"] <= 0.7 * uniq["BioPerf"]


def test_fp_suites_more_unique_than_int(small_dataset, small_result):
    uniq = suite_uniqueness(small_dataset, small_result.clustering, suites=SUITE_ORDER)
    assert uniq["SPECfp2000"] > uniq["SPECint2000"]
    assert uniq["SPECfp2006"] > uniq["SPECint2006"]


def test_domain_suites_less_diverse(small_dataset, small_result):
    curves = cumulative_coverage(
        small_dataset, small_result.clustering, suites=SUITE_ORDER
    )
    for domain in ("BMW", "MediaBenchII"):
        assert clusters_to_cover(curves[domain], 0.9) < clusters_to_cover(
            curves["SPECfp2006"], 0.9
        )


def test_hmmer_versions_share_a_cluster(small_result):
    shared = shared_clusters(
        small_result, ("BioPerf", "hmmer"), ("SPECint2006", "hmmer")
    )
    assert shared


def test_near_homogeneous_benchmarks(small_result):
    # The scale-robust form of the paper's "~99% in one cluster": these
    # benchmarks concentrate in very few clusters even when fine-grained
    # clustering splits a tight blob, while a genuinely multi-phase
    # benchmark (wrf) spreads over more.
    def clusters_for_90(suite, name):
        profile = benchmark_profile(small_result, suite, name)
        total = 0.0
        for count, (_, frac) in enumerate(profile.cluster_fractions, start=1):
            total += frac
            if total >= 0.9:
                return count
        return len(profile.cluster_fractions)

    assert clusters_for_90("SPECint2006", "sjeng") <= 4
    assert clusters_for_90("SPECfp2006", "lbm") <= 4
    assert clusters_for_90("SPECfp2000", "sixtrack") <= 4
    # The homogeneous-vs-multi-phase contrast (wrf spreads over many
    # more clusters) is asserted at paper scale in
    # benchmarks/bench_sec42_insights.py; 12 intervals per benchmark is
    # too coarse to resolve it here.


def test_astar_has_two_prominent_phases(small_result):
    profile = benchmark_profile(small_result, "SPECint2006", "astar")
    assert profile.prominent_phase_count(threshold=0.15) >= 2


def test_all_three_cluster_kinds_appear(small_dataset, small_result):
    comps = cluster_compositions(small_dataset, small_result.clustering)
    groups = group_by_kind(comps)
    for kind in ClusterKind:
        assert groups[kind], kind


def test_key_characteristics_span_categories(small_result):
    from repro.mica import FEATURE_CATEGORY

    categories = {FEATURE_CATEGORY[n] for n in small_result.key_characteristics}
    # Paper's Table 2 spans 5 of 6 categories; at small scale demand >= 3.
    assert len(categories) >= 3


def test_ga_fitness_reasonable(small_result):
    # Paper reaches 0.8+ with 12 characteristics at full scale.
    assert small_result.ga_result.fitness > 0.5
