"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def characterization_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "char.npz"
    code = main(
        [
            "characterize",
            str(path),
            "--preset",
            "tiny",
            "--suite",
            "BMW",
            "--suite",
            "MediaBenchII",
        ]
    )
    assert code == 0
    return path


def test_features_lists_69(capsys):
    assert main(["features"]) == 0
    out = capsys.readouterr().out
    assert "ppm_pas_h12" in out
    assert out.count("\n") >= 70


def test_suites_lists_77(capsys):
    assert main(["suites"]) == 0
    out = capsys.readouterr().out
    assert "77 benchmarks" in out
    assert "BioPerf" in out and "fasta" in out


def test_characterize_writes_file(characterization_file, capsys):
    assert characterization_file.exists()


def test_characterize_reports_summary(tmp_path, capsys):
    path = tmp_path / "c.npz"
    assert main(["characterize", str(path), "--preset", "tiny", "--suite", "BMW", "--no-ga"]) == 0
    out = capsys.readouterr().out
    assert "prominent phases" in out
    assert path.exists()


def test_characterize_rejects_unknown_preset(tmp_path):
    with pytest.raises(SystemExit):
        main(["characterize", str(tmp_path / "x.npz"), "--preset", "gigantic"])


def test_compare_prints_suite_table(characterization_file, capsys):
    assert main(["compare", str(characterization_file)]) == 0
    out = capsys.readouterr().out
    assert "BMW" in out and "MediaBenchII" in out
    assert "unique" in out


def test_phases_prints_distribution(characterization_file, capsys):
    assert main(["phases", str(characterization_file), "BMW", "face"]) == 0
    out = capsys.readouterr().out
    assert "cluster" in out
    assert "unique" in out


def test_render_writes_svg(characterization_file, tmp_path, capsys):
    out_dir = tmp_path / "figs"
    assert main(["render", str(characterization_file), str(out_dir)]) == 0
    svgs = list(out_dir.glob("*.svg"))
    assert svgs


def test_simulate_prints_cpi(characterization_file, capsys):
    assert (
        main(
            [
                "simulate",
                str(characterization_file),
                "BMW",
                "face",
                "--preset",
                "tiny",
                "--full",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "phase-based CPI estimate" in out
    assert "full-simulation CPI" in out


def test_map_writes_svg(characterization_file, tmp_path, capsys):
    out = tmp_path / "space.svg"
    assert main(["map", str(characterization_file), str(out)]) == 0
    assert out.exists()
    assert out.read_text().startswith("<svg")


def test_subset_prints_trajectory(characterization_file, capsys):
    assert main(["subset", str(characterization_file), "--count", "4"]) == 0
    out = capsys.readouterr().out
    assert "cumulative coverage" in out
    assert out.count("%") >= 4


def test_characterize_writes_run_report(tmp_path, capsys):
    from repro.obs import load_report, missing_stages, validate_report

    report_path = tmp_path / "run.json"
    assert (
        main(
            [
                "characterize",
                str(tmp_path / "c.npz"),
                "--preset",
                "tiny",
                "--suite",
                "BMW",
                # The tiny clustering sits below the auto crossover;
                # force the engine so the skipped-row gauge is recorded.
                "--kmeans-engine",
                "accelerated",
                "--run-report",
                str(report_path),
            ]
        )
        == 0
    )
    report = load_report(report_path)
    assert validate_report(report) == []
    assert missing_stages(report) == []
    assert report["command"] == "characterize"
    assert report["config"]["digest"]
    assert report["metrics"]["counters"]["kmeans.restarts"] > 0
    assert 0.0 < report["metrics"]["gauges"]["kmeans.skipped_row_ratio"] < 1.0
    capsys.readouterr()


def test_report_renders_run_report(tmp_path, capsys):
    report_path = tmp_path / "run.json"
    main(
        [
            "characterize",
            str(tmp_path / "c.npz"),
            "--preset",
            "tiny",
            "--suite",
            "BMW",
            "--no-ga",
            "--run-report",
            str(report_path),
        ]
    )
    capsys.readouterr()
    assert main(["report", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "run report" in out
    assert "characterize" in out
    assert "kmeans" in out
    assert "counters" in out


def test_report_rejects_invalid_document(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"run_id": "x"}')
    assert main(["report", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "missing required key" in err


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_characterize_streaming(tmp_path, capsys):
    from repro.streaming import load_streaming_result

    path = tmp_path / "stream.npz"
    code = main(
        [
            "characterize",
            str(path),
            "--preset",
            "tiny",
            "--suite",
            "BMW",
            "--streaming",
            "--batch-intervals",
            "8",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "streaming, 8 intervals/batch" in out
    assert "intervals (streamed)" in out
    result = load_streaming_result(path)
    assert result.batch_intervals == 8
    assert len(result) > 0


def test_characterize_streaming_rejects_bad_batch(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "characterize",
                str(tmp_path / "x.npz"),
                "--preset",
                "tiny",
                "--suite",
                "BMW",
                "--streaming",
                "--batch-intervals",
                "0",
            ]
        )


def test_characterize_streaming_spool_flags(tmp_path, capsys):
    from repro.streaming import load_streaming_result

    path = tmp_path / "stream.npz"
    spool_dir = tmp_path / "spool"
    args = [
        "characterize",
        str(path),
        "--preset",
        "tiny",
        "--suite",
        "BMW",
        "--streaming",
        "--spool-dir",
        str(spool_dir),
        "--prefetch",
        "2",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "sweeps: 1 featurized" in out
    assert list(spool_dir.glob("spool_*.bin"))
    first = load_streaming_result(path)

    # Re-running against the warm directory skips featurization.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "sweeps: 0 featurized" in out
    second = load_streaming_result(path)
    assert second.clustering.bic == first.clustering.bic


def test_characterize_streaming_no_spool(tmp_path, capsys):
    path = tmp_path / "stream.npz"
    assert (
        main(
            [
                "characterize",
                str(path),
                "--preset",
                "tiny",
                "--suite",
                "BMW",
                "--streaming",
                "--no-spool",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "0 replayed (0.0 MB spooled)" in out


def test_characterize_streaming_rejects_bad_prefetch(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "characterize",
                str(tmp_path / "x.npz"),
                "--preset",
                "tiny",
                "--suite",
                "BMW",
                "--streaming",
                "--prefetch",
                "-1",
            ]
        )


def test_characterize_telemetry_streams_events(tmp_path, capsys):
    from repro.obs import read_events

    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "characterize",
                str(tmp_path / "c.npz"),
                "--preset",
                "tiny",
                "--suite",
                "BMW",
                "--no-ga",
                "--telemetry",
                str(events_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    events, truncated = read_events(events_path)
    assert events and not truncated
    assert events[0]["type"] == "run.start"
    assert events[0]["command"] == "characterize"
    assert events[-1]["type"] == "run.end" and events[-1]["ok"] is True
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    closed = {e.get("span") for e in events if e["type"] == "span.close"}
    assert {"pca", "kmeans"} <= closed
    assert any(e["type"] == "progress" for e in events)

    # The same log feeds the follower and the report reconstructor.
    assert main(["watch", str(events_path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "finished ok" in out
    assert main(["report", str(events_path), "--from-events"]) == 0
    out = capsys.readouterr().out
    assert "run report" in out and "kmeans" in out


def test_characterize_history_records_and_runs_commands(tmp_path, capsys):
    history = tmp_path / "history"
    for out_npz in ("c1.npz", "c2.npz"):
        # Distinct artifact paths so the second run re-executes every
        # stage instead of resuming from the first run's stage cache
        # (a resumed run records no per-stage spans to diff).
        assert (
            main(
                [
                    "characterize",
                    str(tmp_path / out_npz),
                    "--preset",
                    "tiny",
                    "--suite",
                    "BMW",
                    "--no-ga",
                    "--history-dir",
                    str(history),
                ]
            )
            == 0
        )
    capsys.readouterr()

    assert main(["runs", "list", "--history-dir", str(history)]) == 0
    out = capsys.readouterr().out
    assert "seq" in out and "git" in out and "wall" in out  # table header
    data_rows = [ln for ln in out.splitlines() if " run " in f" {ln} "]
    assert len(data_rows) == 2
    assert main(["runs", "show", "latest", "--history-dir", str(history)]) == 0
    out = capsys.readouterr().out
    assert "run report" in out

    # Two records in the store: diff prints per-stage wall deltas.
    assert main(["runs", "diff", "--history-dir", str(history)]) == 0
    out = capsys.readouterr().out
    assert "history diff" in out
    assert "stage wall_s" in out and "kmeans" in out
    assert "delta" in out


def test_runs_list_empty_store(tmp_path, capsys):
    assert main(["runs", "list", "--history-dir", str(tmp_path / "empty")]) == 0
    out = capsys.readouterr().out
    assert "no records in" in out


def test_runs_diff_needs_two_records(tmp_path, capsys):
    from repro.obs import HistoryStore, Observation, build_report

    store = HistoryStore(tmp_path / "h")
    ob = Observation(run_id="only")
    store.append_run(build_report(ob))
    assert main(["runs", "diff", "--history-dir", str(tmp_path / "h")]) == 1
    assert "need two" in capsys.readouterr().err


def test_runs_diff_fail_on_regression(tmp_path, capsys):
    from repro.obs import HistoryStore, Observation, build_report

    def pinned(run_id, kmeans_wall):
        ob = Observation(run_id=run_id)
        with ob.span("characterize"):
            with ob.span("kmeans"):
                pass
        doc = build_report(ob)

        def pin(node):
            node["wall_s"] = kmeans_wall if node["name"] == "kmeans" else 1.0
            for child in node.get("children") or []:
                pin(child)

        pin(doc["spans"])
        return doc

    store = HistoryStore(tmp_path / "h")
    store.append_run(pinned("r1", 0.4))
    store.append_run(pinned("r2", 0.9))
    assert (
        main(
            [
                "runs",
                "diff",
                "--history-dir",
                str(tmp_path / "h"),
                "--tolerance",
                "0.10",
                "--fail-on-regression",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "kmeans" in out
    # The same pair within a huge tolerance passes.
    assert (
        main(
            [
                "runs",
                "diff",
                "--history-dir",
                str(tmp_path / "h"),
                "--tolerance",
                "5.0",
                "--fail-on-regression",
            ]
        )
        == 0
    )
    capsys.readouterr()


def test_telemetry_flags_leave_results_bit_identical(tmp_path, capsys):
    """The inert path promise: observing a run must not change it."""
    import numpy as np

    plain = tmp_path / "plain.npz"
    observed = tmp_path / "observed.npz"
    base = ["--preset", "tiny", "--suite", "BMW", "--no-ga"]
    assert main(["characterize", str(plain)] + base) == 0
    assert (
        main(
            ["characterize", str(observed)]
            + base
            + [
                "--run-report",
                str(tmp_path / "run.json"),
                "--telemetry",
                str(tmp_path / "events.jsonl"),
                "--history-dir",
                str(tmp_path / "history"),
            ]
        )
        == 0
    )
    capsys.readouterr()
    with np.load(plain, allow_pickle=True) as a, np.load(
        observed, allow_pickle=True
    ) as b:
        assert set(a.files) == set(b.files)
        for key in a.files:
            assert np.array_equal(a[key], b[key]), key


def test_work_once_on_an_empty_queue_exits_cleanly(tmp_path, capsys):
    assert main(["work", str(tmp_path / "svc"), "--once"]) == 0


def test_work_once_drains_a_submitted_job(tmp_path, capsys):
    from repro.config import AnalysisConfig
    from repro.service import JobQueue

    root = tmp_path / "svc"
    queue = JobQueue(root)
    view, _ = queue.submit(suites=["BMW"], config=AnalysisConfig.tiny())
    assert main(["work", str(root), "--once", "--name", "cli-w"]) == 0
    capsys.readouterr()
    done = JobQueue(root).get(view.job_id)
    assert done.state == "done"
    assert done.result["sha256"]


def test_serve_parser_accepts_the_documented_flags():
    # Parser wiring only: serve itself blocks forever, so stop at parse.
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "/tmp/svc", "--port", "0", "--workers", "2", "--preset", "tiny"]
    )
    assert args.command == "serve"
    assert args.workers == 2
    assert args.port == 0


def test_characterize_resumes_from_stage_checkpoints(tmp_path, capsys):
    """A second identical run reuses stage checkpoints instead of rebuilding."""
    out = tmp_path / "c.npz"
    base = ["characterize", str(out), "--preset", "tiny", "--suite", "BMW", "--no-ga"]
    assert main(base) == 0
    first = out.read_bytes()
    assert (out.parent / (out.name + ".stages")).is_dir()
    assert main(base) == 0
    capsys.readouterr()
    assert out.read_bytes() == first
