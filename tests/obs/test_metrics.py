"""Metrics registry: instruments, thread-safety, snapshot/merge."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry, NoopMetricsRegistry


def test_counter_add_and_read():
    reg = MetricsRegistry()
    reg.counter_add("a")
    reg.counter_add("a", 2.5)
    assert reg.counter_value("a") == 3.5
    assert reg.counter_value("missing") == 0.0


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge_set("g", 1.0)
    reg.gauge_set("g", 7.0)
    assert reg.gauge_value("g") == 7.0
    assert math.isnan(reg.gauge_value("missing"))


def test_histogram_summary_statistics():
    reg = MetricsRegistry()
    for v in [0.001, 0.002, 0.004, 0.1, 10.0]:
        reg.histogram_observe("h", v)
    snap = reg.snapshot()["histograms"]["h"]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(10.107)
    assert snap["min"] == 0.001
    assert snap["max"] == 10.0
    assert snap["mean"] == pytest.approx(10.107 / 5)
    # quantiles are bucket-approximate but clamped to observed range
    assert snap["min"] <= snap["p50"] <= snap["max"]
    assert snap["p50"] <= snap["p90"] <= snap["max"]


def test_histogram_single_value_quantiles_exact():
    reg = MetricsRegistry()
    reg.histogram_observe("h", 0.25)
    snap = reg.snapshot()["histograms"]["h"]
    assert snap["p50"] == 0.25
    assert snap["p90"] == 0.25


def test_histogram_custom_bounds_and_mismatch():
    reg = MetricsRegistry()
    reg.histogram_observe("h", 5.0, bounds=(1.0, 10.0))
    snap = reg.snapshot()["histograms"]["h"]
    assert snap["bounds"] == [1.0, 10.0]
    assert sum(snap["bucket_counts"]) == 1
    other = MetricsRegistry()
    other.histogram_observe("h", 1.0)  # default bounds
    with pytest.raises(ValueError):
        other.merge(reg.snapshot())


def test_histogram_values_outside_bounds_go_to_overflow():
    reg = MetricsRegistry()
    reg.histogram_observe("h", 99.0, bounds=(1.0, 2.0))
    snap = reg.snapshot()["histograms"]["h"]
    assert snap["bucket_counts"][-1] == 1
    assert snap["p90"] == 99.0  # clamped to the exact max


def test_counters_thread_safe_exact_total():
    reg = MetricsRegistry()
    n_threads, per_thread = 8, 5000

    def work():
        for _ in range(per_thread):
            reg.counter_add("hits")

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter_value("hits") == n_threads * per_thread


def test_snapshot_merge_adds_counters_and_buckets():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter_add("c", 1)
    b.counter_add("c", 2)
    b.counter_add("only_b", 5)
    a.gauge_set("g", 1.0)
    b.gauge_set("g", 2.0)
    a.histogram_observe("h", 0.5)
    b.histogram_observe("h", 0.7)
    a.merge(b.snapshot())
    assert a.counter_value("c") == 3
    assert a.counter_value("only_b") == 5
    assert a.gauge_value("g") == 2.0  # merged value wins
    assert a.snapshot()["histograms"]["h"]["count"] == 2


def test_merge_same_snapshot_twice_double_counts():
    # The registry itself does not dedupe — exactly-once is the
    # executor's contract (tested in tests/obs/test_executor_obs.py).
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.counter_add("c", 2)
    snap = b.snapshot()
    a.merge(snap)
    a.merge(snap)
    assert a.counter_value("c") == 4


def test_noop_registry_records_nothing():
    reg = NoopMetricsRegistry()
    reg.counter_add("c", 5)
    reg.gauge_set("g", 1.0)
    reg.histogram_observe("h", 1.0)
    reg.merge({"counters": {"c": 9}, "gauges": {}, "histograms": {}})
    snap = reg.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_quantile_argument_validation():
    reg = MetricsRegistry()
    reg.histogram_observe("h", 1.0)
    with pytest.raises(ValueError):
        reg.histogram_quantile("h", 1.5)
    assert math.isnan(reg.histogram_quantile("missing", 0.5))
