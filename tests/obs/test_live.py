"""Live log consumption: watch state, rendering, report reconstruction.

Includes the during-execution contract: a reader thread parses the
event log at a deterministic mid-run point (a handshake sink blocks
the writer until the reader has looked), proving events stream as they
happen rather than at exit.
"""

import io
import json
import threading

import pytest

from repro.config import AnalysisConfig
from repro.core import build_dataset, run_characterization
from repro.obs import (
    EventBus,
    JsonlSink,
    missing_stages,
    observe,
    read_events,
    render_live,
    report_from_events,
    span,
    summarize_events,
    validate_report,
    watch,
)
from repro.suites import SUITE_INT2000, get_suite


def _events_for_small_run():
    handle = io.StringIO()
    bus = EventBus(JsonlSink(handle), "r1")
    bus.start(command="characterize", preset="tiny", config={"digest": "d1"})
    with observe(emitter=bus) as ob:
        with span("characterize"):
            with span("pca"):
                pass
        ob.metrics.counter_add("dataset.rows", 64)
        bus.emit_metric_deltas(ob.metrics)
        bus.progress("kmeans", 5, 10)
        bus.heartbeat("BMW/face", 3, 5)
    bus.close(ok=True)
    return [json.loads(line) for line in handle.getvalue().splitlines()]


def test_summarize_folds_events_into_state():
    state = summarize_events(_events_for_small_run())
    assert state["run_id"] == "r1"
    assert state["command"] == "characterize"
    assert state["preset"] == "tiny"
    assert state["ended"] is not None and state["ok"] is True
    assert state["open_spans"] == []
    assert state["progress"]["kmeans"]["done"] == 5
    assert state["heartbeat"]["label"] == "BMW/face"
    assert state["counters"]["dataset.rows"] == 64


def test_summarize_tracks_open_spans_mid_run():
    events = _events_for_small_run()
    # Cut the log right after the "pca" open: both spans still open.
    opens = [i for i, e in enumerate(events) if e["type"] == "span.open"]
    state = summarize_events(events[: opens[1] + 1])
    assert state["open_spans"] == ["characterize", "pca"]
    assert state["ended"] is None


def test_render_live_statuses():
    events = _events_for_small_run()
    finished = render_live(summarize_events(events))
    assert "finished ok" in finished and "r1" in finished
    running = render_live(summarize_events(events[:-1]))
    assert "running" in running
    assert "no events yet" in render_live(summarize_events([]))
    truncated = render_live(summarize_events(events), truncated=True)
    assert "mid-line" in truncated


def test_render_live_shows_progress_and_heartbeat():
    text = render_live(summarize_events(_events_for_small_run()))
    assert "kmeans" in text and "5/10" in text
    assert "eta" in text
    assert "BMW/face" in text and "3/5 tasks" in text


def test_watch_once_renders_and_returns_zero(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r2")
    bus.start(command="characterize")
    bus.emit("span.open", span="characterize", depth=1)
    assert watch(path, once=True) == 0
    out = capsys.readouterr().out
    assert "r2" in out and "running" in out
    bus.close()


def test_watch_returns_when_the_run_ends(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r3")
    bus.emit("tick")
    frames = []
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        if len(sleeps) == 2:
            bus.close(ok=True)  # the run finishes while we watch

    assert watch(path, echo=frames.append, sleep=fake_sleep) == 0
    assert "finished ok" in frames[-1]


def test_watch_gives_up_on_a_stale_log(tmp_path):
    # No pid in the log (legacy writer): quiet polls are the only
    # liveness signal, so the watch still gives up after 10 of them.
    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r4")
    bus.emit("tick")
    frames = []
    assert watch(path, echo=frames.append, sleep=lambda _s: None) == 1
    assert "giving up" in frames[-1]
    bus.close()


def test_summarize_captures_writer_pid():
    import os

    handle = io.StringIO()
    bus = EventBus(JsonlSink(handle), "rp")
    bus.start(command="characterize", pid=os.getpid())
    bus.close(ok=True)
    events = [json.loads(line) for line in handle.getvalue().splitlines()]
    assert summarize_events(events)["pid"] == os.getpid()


def test_watch_keeps_following_a_slow_writer_that_is_alive(tmp_path):
    """A quiet log whose writer pid is alive must not end the watch.

    Regression: the watcher used to give up unconditionally after 10
    quiet polls, abandoning live runs inside any stage slower than
    10 refresh intervals.  Here the writer (this process) stays silent
    for 25 polls — well past the old give-up point — then finishes the
    run; the watch must ride it out and exit 0 on ``run.end``.
    """
    import os

    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r5")
    bus.start(command="characterize", pid=os.getpid())
    frames = []
    polls = [0]

    def fake_sleep(_seconds):
        polls[0] += 1
        if polls[0] == 25:
            bus.close(ok=True)  # the slow stage finally ends

    assert watch(path, echo=frames.append, sleep=fake_sleep) == 0
    assert polls[0] >= 25
    assert "finished ok" in frames[-1]
    assert any("still alive, waiting" in f for f in frames)


def test_watch_gives_up_when_the_writer_pid_is_dead(tmp_path):
    import subprocess
    import sys

    gone = int(
        subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
        ).stdout.strip()
    )
    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r6")
    bus.start(command="characterize", pid=gone)
    frames = []
    assert watch(path, echo=frames.append, sleep=lambda _s: None) == 1
    assert "giving up" in frames[-1]
    assert f"writer pid {gone} is gone" in frames[-1]
    bus.close()


def test_report_from_events_round_trips_a_complete_run():
    events = _events_for_small_run()
    doc = report_from_events(events)
    assert validate_report(doc) == []
    assert "partial" not in doc
    assert doc["run_id"] == "r1"
    assert doc["config"]["digest"] == "d1"
    names = {c["name"] for c in doc["spans"]["children"]}
    assert "characterize" in names
    assert doc["metrics"]["counters"]["dataset.rows"] == 64


def test_report_from_events_marks_killed_spans_partial():
    events = _events_for_small_run()
    # Drop everything after the "pca" open — the SIGKILL residue.
    opens = [i for i, e in enumerate(events) if e["type"] == "span.open"]
    doc = report_from_events(events[: opens[1] + 1], truncated=True)
    assert doc["partial"] is True
    assert validate_report(doc) == []
    outer = doc["spans"]["children"][0]
    assert outer["name"] == "characterize"
    assert outer["attrs"].get("partial") is True
    assert outer["children"][0]["attrs"].get("partial") is True


def test_report_from_events_keeps_recorded_durations():
    buffer = io.StringIO()
    bus = EventBus(JsonlSink(buffer), "r5")
    bus.emit("span.open", span="kmeans", depth=1)
    bus.emit("span.close", span="kmeans", depth=1, wall_s=1.5, cpu_s=0.5,
             attrs={"k": 8})
    bus.close()
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    doc = report_from_events(events)
    node = doc["spans"]["children"][0]
    assert node["wall_s"] == 1.5 and node["cpu_s"] == 0.5
    assert node["attrs"]["k"] == 8


class _HandshakeSink(JsonlSink):
    """Blocks the writer after a trigger event until a reader looked."""

    def __init__(self, path, trigger, ready, resume):
        super().__init__(path)
        self._trigger = trigger
        self._ready = ready
        self._resume = resume
        self._fired = False

    def write_event(self, event):
        super().write_event(event)
        if not self._fired and self._trigger(event):
            self._fired = True
            self._ready.set()
            assert self._resume.wait(30), "reader never released the writer"


def test_events_stream_during_execution_not_post_hoc(tmp_path):
    """A reader thread sees ordered, parseable events mid-pipeline."""
    path = tmp_path / "events.jsonl"
    ready, resume = threading.Event(), threading.Event()
    sink = _HandshakeSink(
        path,
        lambda e: e.get("type") == "span.close" and e.get("span") == "pca",
        ready,
        resume,
    )
    seen = {}

    def reader():
        if not ready.wait(60):
            seen["error"] = "writer never reached the pca close"
            resume.set()
            return
        try:
            events, truncated = read_events(path)
            seen["events"] = events
            seen["truncated"] = truncated
            seen["state"] = summarize_events(events)
        finally:
            resume.set()

    thread = threading.Thread(target=reader)
    thread.start()
    config = AnalysisConfig.tiny().replace(
        intervals_per_benchmark=8, n_clusters=4, kmeans_restarts=2
    )
    benches = get_suite(SUITE_INT2000).benchmarks[:3]
    bus = EventBus(sink, "mid-run")
    with observe(emitter=bus):
        dataset = build_dataset(benches, config)
        run_characterization(dataset, config, select_key=False)
    bus.close(ok=True)
    thread.join(60)
    assert not thread.is_alive()
    assert "error" not in seen, seen.get("error")

    # The mid-run view: parseable, strictly ordered, visibly unfinished.
    events = seen["events"]
    assert events and not seen["truncated"]
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert events[-1]["type"] == "span.close" and events[-1]["span"] == "pca"
    assert all(e["type"] != "run.end" for e in events)
    assert seen["state"]["ended"] is None
    # Progress had already streamed while the dataset was building.
    assert "dataset.build" in seen["state"]["progress"]

    # And the final log strictly extends what the reader saw.
    final_events, truncated = read_events(path)
    assert not truncated
    assert final_events[-1]["type"] == "run.end"
    assert [e["seq"] for e in final_events[: len(events)]] == seqs
    doc = report_from_events(final_events)
    assert validate_report(doc) == []
    assert missing_stages(doc) == ["ga"]  # select_key=False skips the GA


@pytest.mark.parametrize("bad", [[], [{"type": "metric"}]])
def test_report_from_events_degrades_gracefully(bad):
    # An empty or contentless log still reconstructs to a schema-valid
    # document — flagged partial, since run.end never arrived.
    doc = report_from_events(bad, truncated=False)
    assert doc["partial"] is True
    assert validate_report(doc) == []
