"""BENCH emission: line format, registry gauges, defensive report writes."""

import json

import pytest

from repro.obs import emit_bench, observe


def test_emit_bench_line_and_payload():
    lines = []
    payload = emit_bench("demo", {"speedup": 2.5, "ok": True}, echo=lines.append)
    assert payload["bench"] == "demo"
    assert len(lines) == 1
    assert lines[0].startswith("BENCH ")
    parsed = json.loads(lines[0][len("BENCH "):])
    assert parsed == {"bench": "demo", "speedup": 2.5, "ok": True}


def test_emit_bench_folds_numeric_fields_into_gauges():
    with observe(run_id="bench-gauges") as ob:
        emit_bench(
            "demo",
            {"speedup": 2.5, "ok": True, "label": "not-a-number"},
            echo=lambda _: None,
        )
        gauges = ob.metrics.snapshot()["gauges"]
    assert gauges["bench.demo.speedup"] == 2.5
    assert gauges["bench.demo.ok"] == 1.0
    assert "bench.demo.label" not in gauges


def test_emit_bench_writes_report(tmp_path):
    def report(name, text):
        (tmp_path / name).write_text(text)

    emit_bench("demo", {"speedup": 2.0}, report=report, echo=lambda _: None)
    written = json.loads((tmp_path / "demo.json").read_text())
    assert written["speedup"] == 2.0
    # Every reported bench also leaves the stable collector artifact.
    stable = json.loads((tmp_path / "BENCH_demo.json").read_text())
    assert stable == written


def test_emit_bench_recreates_missing_output_dir(tmp_path):
    # The report writer targets a directory that was wiped between
    # runs; emit_bench must recreate it and retry instead of losing
    # the result.
    out = tmp_path / "output"

    def report(name, text):
        (out / name).write_text(text)

    emit_bench("demo", {"speedup": 2.0}, report=report, echo=lambda _: None)
    assert json.loads((out / "demo.json").read_text())["speedup"] == 2.0
    assert json.loads((out / "BENCH_demo.json").read_text())["speedup"] == 2.0


def test_emit_bench_propagates_non_directory_errors():
    def report(name, text):
        raise FileNotFoundError()  # no filename to recreate from

    with pytest.raises(FileNotFoundError):
        emit_bench("demo", {"x": 1}, report=report, echo=lambda _: None)
