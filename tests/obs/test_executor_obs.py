"""Worker telemetry through the executors: one merge per task, any backend.

The executor contract under an active observation: every task's spans
and metrics come back with its result and are merged under the caller's
current span exactly once, in submission order — so counter totals and
the span tree are identical for serial, thread, and process backends.
"""

import pytest

from repro.obs import metrics, observe, span
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerError,
    fork_available,
)

BACKENDS = [
    pytest.param(SerialExecutor(), id="serial"),
    pytest.param(ThreadExecutor(3), id="thread"),
    pytest.param(
        ProcessExecutor(3),
        id="process",
        marks=pytest.mark.skipif(not fork_available(), reason="no fork"),
    ),
]


def _task(payload, i):
    with span("work", index=i):
        pass
    metrics().counter_add("tasks_done", 1)
    metrics().counter_add("weights", i)
    return i * 10


def _failing(payload, i):
    metrics().counter_add("attempted", 1)
    if i == 2:
        raise RuntimeError("planned")
    return i


@pytest.mark.parametrize("executor", BACKENDS)
def test_worker_spans_merge_in_submission_order(executor):
    with observe() as ob:
        with span("fanout"):
            results = executor.map(
                _task, range(5), labels=[f"t{i}" for i in range(5)]
            )
    assert results == [0, 10, 20, 30, 40]
    fanout = ob.root.children[0]
    assert fanout.name == "fanout"
    assert [child.name for child in fanout.children] == ["task"] * 5
    assert [child.attrs["label"] for child in fanout.children] == [
        "t0",
        "t1",
        "t2",
        "t3",
        "t4",
    ]
    # each task span carries the worker-side children
    for i, child in enumerate(fanout.children):
        assert [g.name for g in child.children] == ["work"]
        assert child.children[0].attrs["index"] == i


@pytest.mark.parametrize("executor", BACKENDS)
def test_worker_metrics_counted_exactly_once(executor):
    with observe() as ob:
        executor.map(_task, range(8), chunk_size=3)
    assert ob.metrics.counter_value("tasks_done") == 8
    assert ob.metrics.counter_value("weights") == sum(range(8))


@pytest.mark.parametrize("executor", BACKENDS)
def test_same_tree_and_totals_across_backends(executor):
    with observe() as ob:
        with span("fanout"):
            executor.map(_task, range(6), chunk_size=2)
    names = [
        (child.name, tuple(g.name for g in child.children))
        for child in ob.root.children[0].children
    ]
    assert names == [("task", ("work",))] * 6
    assert ob.metrics.counter_value("tasks_done") == 6


@pytest.mark.parametrize("executor", BACKENDS)
def test_failed_task_aborts_without_double_merge(executor):
    with observe() as ob:
        with pytest.raises(WorkerError):
            executor.map(_failing, range(4), chunk_size=4)
    # Tasks before the failure in the failing chunk merged once each;
    # the failed task's telemetry is discarded with its chunk.
    assert ob.metrics.counter_value("attempted") == 2


@pytest.mark.parametrize("executor", BACKENDS)
def test_no_observation_no_snapshots(executor):
    results = executor.map(_task, range(3))
    assert results == [0, 10, 20]


def test_serial_tasks_do_not_leak_into_parent_stack():
    # capture() swaps the thread-local observation during the task, so
    # inline (serial) execution builds the same tree as a pool would.
    with observe() as ob:
        with span("outer"):
            SerialExecutor().map(_task, range(2))
            with span("sibling"):
                pass
    outer = ob.root.children[0]
    assert [c.name for c in outer.children] == ["task", "task", "sibling"]
