"""Worker events through the executors: exactly once, submission order.

Worker tasks never touch the sink; their events buffer into a bounded
EventBuffer, ride back inside the telemetry snapshot, and replay into
the parent's bus at the single merge point.  The resulting stream must
be identical — strictly monotonic seqs, task events in submission
order — for the serial, thread, and process backends, and a failed
task's events must be discarded with its snapshot.
"""

import io
import json

import pytest

from repro.obs import EventBus, JsonlSink, emit_event, observe, span
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerError,
    fork_available,
)

BACKENDS = [
    pytest.param(SerialExecutor(), id="serial"),
    pytest.param(ThreadExecutor(3), id="thread"),
    pytest.param(
        ProcessExecutor(3),
        id="process",
        marks=pytest.mark.skipif(not fork_available(), reason="no fork"),
    ),
]


def _task(payload, i):
    with span("work", index=i):
        emit_event("marker", index=i)
    return i


def _failing(payload, i):
    emit_event("marker", index=i)
    if i == 2:
        raise RuntimeError("planned")
    return i


def _run(executor, fn, n, **kwargs):
    handle = io.StringIO()
    bus = EventBus(JsonlSink(handle), "r1")
    with observe(emitter=bus):
        with span("fanout"):
            executor.map(fn, range(n), labels=[f"t{i}" for i in range(n)], **kwargs)
    bus.close()
    return [json.loads(line) for line in handle.getvalue().splitlines()]


@pytest.mark.parametrize("executor", BACKENDS)
def test_worker_events_replay_in_submission_order(executor):
    events = _run(executor, _task, 5)
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(len(events)))
    markers = [e["index"] for e in events if e["type"] == "marker"]
    assert markers == [0, 1, 2, 3, 4]
    # Each task contributes exactly one open/close pair for its span.
    opens = [e for e in events if e["type"] == "span.open" and e["span"] == "work"]
    closes = [e for e in events if e["type"] == "span.close" and e["span"] == "work"]
    assert [e["attrs"]["index"] for e in opens] == [0, 1, 2, 3, 4]
    assert len(closes) == 5


@pytest.mark.parametrize("executor", BACKENDS)
def test_heartbeats_count_completed_tasks_in_order(executor):
    events = _run(executor, _task, 4)
    beats = [e for e in events if e["type"] == "heartbeat"]
    assert [(e["label"], e["completed"], e["total"]) for e in beats] == [
        ("t0", 1, 4),
        ("t1", 2, 4),
        ("t2", 3, 4),
        ("t3", 4, 4),
    ]


@pytest.mark.parametrize("executor", BACKENDS)
def test_stream_is_identical_across_backends(executor):
    events = _run(executor, _task, 4, chunk_size=2)
    shape = [
        (e["type"], e.get("span"), e.get("index"))
        for e in events
        if e["type"] in ("span.open", "span.close", "marker")
    ]
    # The same canonical stream whatever the backend: each task's
    # worker-side span and marker, per task, in submission order.
    expected = []
    for i in range(4):
        expected += [
            ("span.open", "work", None),
            ("marker", None, i),
            ("span.close", "work", None),
        ]
    assert shape == [("span.open", "fanout", None)] + expected + [
        ("span.close", "fanout", None)
    ]


@pytest.mark.parametrize("executor", BACKENDS)
def test_failed_task_events_are_discarded(executor):
    handle = io.StringIO()
    bus = EventBus(JsonlSink(handle), "r1")
    with observe(emitter=bus):
        with pytest.raises(WorkerError):
            executor.map(_failing, range(4), chunk_size=4)
    bus.close(ok=False)
    events = [json.loads(line) for line in handle.getvalue().splitlines()]
    markers = [e["index"] for e in events if e["type"] == "marker"]
    # Tasks before the failure in the chunk replayed once each; the
    # failing task's buffer died with its snapshot.
    assert markers == [0, 1]
    assert events[-1]["type"] == "run.end" and events[-1]["ok"] is False


def test_no_emitter_means_no_worker_buffers():
    # Without a bus on the parent observation, capture() must not
    # allocate per-task buffers (events would be collected and thrown
    # away on every merge).
    from repro.obs.spans import capture

    with observe():
        with capture("t0") as worker:
            pass
        assert worker.emitter is None
    handle = io.StringIO()
    bus = EventBus(JsonlSink(handle), "r1")
    with observe(emitter=bus):
        with capture("t1") as worker:
            pass
        assert worker.emitter is not None  # a bounded EventBuffer
