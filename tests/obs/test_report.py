"""Run report: build → write → load → validate round-trip, rendering."""

import json

import pytest

from repro.config import AnalysisConfig
from repro.obs import (
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    STAGES,
    STREAMING_STAGES,
    Observation,
    build_report,
    load_report,
    missing_stages,
    observe,
    render_report,
    validate_report,
    write_report,
)


def _observation_with_stages():
    ob = Observation(run_id="r1")
    with ob.span("characterize"):
        for stage in STAGES:
            with ob.span(stage):
                pass
    ob.metrics.counter_add("kmeans.restarts", 10)
    ob.metrics.gauge_set("kmeans.skipped_row_ratio", 0.5)
    ob.metrics.histogram_observe("kmeans.restart_bic", -120.0)
    return ob


def test_round_trip_is_valid(tmp_path):
    ob = _observation_with_stages()
    report = build_report(ob, config=AnalysisConfig.tiny(), command="characterize")
    path = write_report(tmp_path / "run.json", report)
    loaded = load_report(path)
    assert validate_report(loaded) == []
    assert missing_stages(loaded) == []
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["run_id"] == "r1"
    assert loaded["config"]["digest"] == AnalysisConfig.tiny().full_key()
    assert (
        loaded["config"]["fields"]["intervals_per_benchmark"]
        == AnalysisConfig.tiny().intervals_per_benchmark
    )
    assert loaded["metrics"]["counters"]["kmeans.restarts"] == 10


def test_report_is_plain_json(tmp_path):
    ob = _observation_with_stages()
    report = build_report(ob, config=AnalysisConfig.tiny())
    text = json.dumps(report)  # raises if anything non-serializable leaked
    assert "kmeans.restart_bic" in text


def test_build_report_closes_the_observation():
    ob = Observation(run_id="r2")
    report = build_report(ob)
    assert report["spans"]["wall_s"] >= 0.0
    assert report["environment"]["python"]


def test_validate_flags_missing_keys():
    problems = validate_report({"run_id": "x"})
    missing = {p for p in problems if p.startswith("missing required key")}
    assert len(missing) == len(REQUIRED_KEYS) - 1


def test_validate_flags_bad_shapes():
    ob = _observation_with_stages()
    report = build_report(ob, config=AnalysisConfig.tiny())
    report["schema_version"] = 99
    report["spans"] = []
    report["metrics"] = {"counters": {}}
    report["config"] = {}
    problems = validate_report(report)
    assert any("schema_version" in p for p in problems)
    assert any("span tree" in p for p in problems)
    assert any("gauges" in p for p in problems)
    assert any("digest" in p for p in problems)


def test_missing_stages_reports_absent_names():
    ob = Observation(run_id="r3")
    with ob.span("pca"):
        pass
    report = build_report(ob)
    assert missing_stages(report) == [
        s for s in STAGES if s != "pca"
    ]


def test_missing_stages_checks_streaming_names_for_streaming_runs():
    # A streaming run replaces the six batch stages with its pass
    # structure; judging it against the batch names would flag all six.
    ob = Observation(run_id="s1", root_name="characterize.streaming")
    for stage in STREAMING_STAGES:
        with ob.span(stage):
            pass
    report = build_report(ob)
    assert missing_stages(report) == []


def test_missing_stages_recognizes_streaming_by_span_prefix():
    # Even without the characterize.streaming root (e.g. a report built
    # around a bare engine call), any streaming.* span flips the check.
    ob = Observation(run_id="s2")
    with ob.span("streaming.pca"):
        pass
    report = build_report(ob)
    assert missing_stages(report) == ["streaming.kmeans", "streaming.score"]


def test_streaming_run_report_round_trip(tmp_path):
    from repro.streaming import run_streaming_characterization
    from repro.suites import SUITE_INT2000, get_suite

    config = AnalysisConfig.tiny().replace(
        intervals_per_benchmark=8, n_clusters=4, kmeans_restarts=2
    )
    benches = get_suite(SUITE_INT2000).benchmarks[:3]
    with observe(run_id="s3", root_name="characterize.streaming") as ob:
        run_streaming_characterization(benches, config)
    report = build_report(ob, config=config, command="characterize")
    loaded = load_report(write_report(tmp_path / "streaming.json", report))
    assert validate_report(loaded) == []
    assert missing_stages(loaded) == []
    for stage in STREAMING_STAGES:
        assert stage in json.dumps(loaded["spans"])


def test_render_report_shows_tree_and_metrics():
    ob = _observation_with_stages()
    text = render_report(build_report(ob, config=AnalysisConfig.tiny()))
    assert "run report r1" in text
    assert "characterize" in text
    for stage in STAGES:
        assert stage in text
    assert "kmeans.restarts" in text
    assert "kmeans.restart_bic" in text
    assert "missing methodology stages" not in text


def test_render_elides_excess_siblings():
    ob = Observation(run_id="r4")
    with ob.span("fanout"):
        for i in range(10):
            with ob.span("task", index=i):
                pass
    text = render_report(build_report(ob), max_children=3)
    assert "... 7 more spans elided" in text


def test_render_notes_missing_stages():
    ob = Observation(run_id="r5")
    text = render_report(build_report(ob))
    assert "missing methodology stages" in text
    assert "mica" in text


@pytest.mark.parametrize("key", REQUIRED_KEYS)
def test_every_required_key_is_required(key):
    ob = _observation_with_stages()
    report = build_report(ob, config=AnalysisConfig.tiny())
    del report[key]
    assert any(key in p for p in validate_report(report))
