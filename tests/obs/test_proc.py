"""Peak-RSS gauges: getrusage reader, registry recording, report inclusion."""

import subprocess
import sys

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.obs import (
    MetricsRegistry,
    build_report,
    observe,
    peak_rss_mb,
    record_peak_rss,
    validate_report,
)
from repro.obs.proc import _maxrss_to_mb, peak_rss_children_mb


def test_peak_rss_mb_is_positive_and_plausible():
    peak = peak_rss_mb()
    # The interpreter plus numpy resident set is megabytes, not zero
    # and not terabytes.
    assert 1.0 < peak < 1_000_000.0


def test_peak_rss_grows_monotonically_with_allocation():
    before = peak_rss_mb()
    ballast = np.ones((4 << 20,), dtype=np.float64)  # 32 MiB touched
    ballast[::4096] = 2.0
    after = peak_rss_mb()
    assert after >= before
    del ballast


def test_record_peak_rss_sets_gauge():
    registry = MetricsRegistry()
    peak = record_peak_rss(registry)
    snap = registry.snapshot()
    assert snap["gauges"]["proc.peak_rss_mb"] == peak
    assert peak > 0


def test_record_peak_rss_defaults_to_active_registry():
    with observe(run_id="rss-test") as ob:
        record_peak_rss()
        gauges = ob.metrics.snapshot()["gauges"]
    assert gauges["proc.peak_rss_mb"] > 0


def test_run_report_includes_peak_rss_gauge():
    with observe(run_id="rss-report") as ob:
        pass
    report = build_report(ob, config=AnalysisConfig.tiny(), command="test")
    assert validate_report(report) == []
    assert report["metrics"]["gauges"]["proc.peak_rss_mb"] > 0


def test_maxrss_units_differ_by_platform(monkeypatch):
    # ru_maxrss is kilobytes on Linux but *bytes* on macOS: the same
    # raw value must normalize 1024x apart.
    monkeypatch.setattr(sys, "platform", "linux")
    linux_mb = _maxrss_to_mb(2048.0)
    monkeypatch.setattr(sys, "platform", "darwin")
    darwin_mb = _maxrss_to_mb(2048.0)
    assert linux_mb == 2.0
    assert darwin_mb == pytest.approx(2048.0 / (1024.0 * 1024.0))
    assert linux_mb == pytest.approx(darwin_mb * 1024.0)


def test_children_peak_counts_waited_for_children():
    # Spawn a child that holds ~48 MiB resident, wait for it, and the
    # RUSAGE_CHILDREN high-water mark must reflect it.
    before = peak_rss_children_mb()
    subprocess.run(
        [
            sys.executable,
            "-c",
            "b = bytearray(48 * 1024 * 1024)\n"
            "b[::4096] = bytes(len(b[::4096]))\n",
        ],
        check=True,
    )
    after = peak_rss_children_mb()
    assert after >= before
    assert after >= 24.0  # well above zero, below is implausible


def test_record_peak_rss_includes_children_gauge_after_wait():
    registry = MetricsRegistry()
    subprocess.run([sys.executable, "-c", "pass"], check=True)
    record_peak_rss(registry)
    gauges = registry.snapshot()["gauges"]
    # A child has been waited for, so the children gauge must be
    # present (nonzero lifetime high-water mark) alongside self.
    assert gauges["proc.peak_rss_mb"] > 0
    assert gauges.get("proc.peak_rss_children_mb", 0.0) > 0


def test_children_gauge_absent_when_no_child_memory(monkeypatch):
    import repro.obs.proc as proc_mod

    registry = MetricsRegistry()
    monkeypatch.setattr(proc_mod, "peak_rss_children_mb", lambda: 0.0)
    proc_mod.record_peak_rss(registry)
    gauges = registry.snapshot()["gauges"]
    assert "proc.peak_rss_children_mb" not in gauges
