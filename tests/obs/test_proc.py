"""Peak-RSS gauges: getrusage reader, registry recording, report inclusion."""

import numpy as np

from repro.config import AnalysisConfig
from repro.obs import (
    MetricsRegistry,
    build_report,
    observe,
    peak_rss_mb,
    record_peak_rss,
    validate_report,
)


def test_peak_rss_mb_is_positive_and_plausible():
    peak = peak_rss_mb()
    # The interpreter plus numpy resident set is megabytes, not zero
    # and not terabytes.
    assert 1.0 < peak < 1_000_000.0


def test_peak_rss_grows_monotonically_with_allocation():
    before = peak_rss_mb()
    ballast = np.ones((4 << 20,), dtype=np.float64)  # 32 MiB touched
    ballast[::4096] = 2.0
    after = peak_rss_mb()
    assert after >= before
    del ballast


def test_record_peak_rss_sets_gauge():
    registry = MetricsRegistry()
    peak = record_peak_rss(registry)
    snap = registry.snapshot()
    assert snap["gauges"]["proc.peak_rss_mb"] == peak
    assert peak > 0


def test_record_peak_rss_defaults_to_active_registry():
    with observe(run_id="rss-test") as ob:
        record_peak_rss()
        gauges = ob.metrics.snapshot()["gauges"]
    assert gauges["proc.peak_rss_mb"] > 0


def test_run_report_includes_peak_rss_gauge():
    with observe(run_id="rss-report") as ob:
        pass
    report = build_report(ob, config=AnalysisConfig.tiny(), command="test")
    assert validate_report(report) == []
    assert report["metrics"]["gauges"]["proc.peak_rss_mb"] > 0
