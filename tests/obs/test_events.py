"""Event bus: ordering, sinks, progress/ETA, buffers, crash-tolerant reads."""

import io
import json
import threading

import pytest

from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EventBuffer,
    EventBus,
    JsonlSink,
    ProgressEstimator,
    emit_event,
    emit_progress,
    observe,
    read_events,
    span,
)


def _bus(run_id="r1", clock=None):
    handle = io.StringIO()
    kwargs = {"clock": clock} if clock is not None else {}
    return EventBus(JsonlSink(handle), run_id, **kwargs), handle


def _lines(handle):
    return [json.loads(line) for line in handle.getvalue().splitlines()]


def test_every_event_carries_the_envelope_fields():
    bus, handle = _bus(clock=lambda: 123.0)
    bus.start(command="characterize", preset="tiny")
    bus.emit("custom", detail=1)
    bus.close(ok=True)
    events = _lines(handle)
    assert [e["type"] for e in events] == ["run.start", "custom", "run.end"]
    for event in events:
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert event["run_id"] == "r1"
        assert event["ts"] == 123.0
    assert events[-1]["ok"] is True


def test_seq_is_strictly_monotonic_across_threads():
    bus, handle = _bus()
    threads = [
        threading.Thread(target=lambda: [bus.emit("tick") for _ in range(50)])
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seqs = [e["seq"] for e in _lines(handle)]
    assert seqs == list(range(200))


def test_emit_after_close_is_dropped():
    bus, handle = _bus()
    bus.close(ok=False)
    assert bus.emit("late") is None
    events = _lines(handle)
    assert [e["type"] for e in events] == ["run.end"]
    assert events[0]["ok"] is False


def test_every_line_is_flushed_as_written(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus(JsonlSink(path), "r2")
    bus.emit("first")
    # Without closing the bus (the SIGKILL scenario), the line must
    # already be on disk and parseable.
    events, truncated = read_events(path)
    assert not truncated
    assert [e["type"] for e in events] == ["first"]
    bus.close()


def test_read_events_tolerates_a_truncated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"seq": 0, "type": "a"}\n{"seq": 1, "ty')
    events, truncated = read_events(path)
    assert truncated
    assert [e["seq"] for e in events] == [0]


def test_read_events_stops_at_first_bad_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"seq": 0}\nnot json\n{"seq": 2}\n')
    events, truncated = read_events(path)
    assert truncated
    assert [e["seq"] for e in events] == [0]


def test_read_events_missing_file_is_empty_not_an_error(tmp_path):
    events, truncated = read_events(tmp_path / "absent.jsonl")
    assert events == [] and truncated is False


def test_progress_estimator_eta_is_linear_extrapolation():
    ticks = iter([0.0, 10.0])
    estimator = ProgressEstimator("mica", 4, clock=lambda: next(ticks))
    fields = estimator.update(1)
    # 1 of 4 units in 10s -> 30s for the remaining 3.
    assert fields["fraction"] == 0.25
    assert fields["elapsed_s"] == 10.0
    assert fields["eta_s"] == 30.0


def test_progress_estimator_no_eta_before_first_unit():
    estimator = ProgressEstimator("mica", 4)
    assert estimator.update(0)["eta_s"] is None


def test_progress_estimator_clamps_done_to_total():
    estimator = ProgressEstimator("mica", 3)
    assert estimator.update(7)["done"] == 3
    assert estimator.update(7)["fraction"] == 1.0


def test_bus_progress_tracks_one_estimator_per_stage():
    bus, handle = _bus()
    bus.progress("mica", 1, 4)
    bus.progress("kmeans", 2, 10)
    bus.progress("mica", 4, 4)
    events = _lines(handle)
    assert [(e["stage"], e["done"], e["total"]) for e in events] == [
        ("mica", 1, 4),
        ("kmeans", 2, 10),
        ("mica", 4, 4),
    ]
    assert events[-1]["fraction"] == 1.0


def test_bus_progress_total_can_be_refined():
    bus, handle = _bus()
    bus.progress("streaming.pca", 10, 100)
    bus.progress("streaming.pca", 20, 120)  # the batch ledger grew
    assert _lines(handle)[-1]["total"] == 120


def test_event_buffer_is_bounded_and_counts_drops():
    buffer = EventBuffer(max_events=3)
    for i in range(5):
        buffer.emit("tick", i=i)
    events, dropped = buffer.drain()
    assert [e["i"] for e in events] == [2, 3, 4]  # oldest dropped first
    assert dropped == 2
    assert buffer.drain() == ([], 0)  # drain empties


def test_replay_preserves_payload_and_assigns_fresh_seqs():
    buffer = EventBuffer()
    buffer.emit("span.open", span="work", depth=1)
    buffer.emit("span.close", span="work", depth=1, wall_s=0.5)
    events, dropped = buffer.drain()
    bus, handle = _bus()
    bus.replay(events, dropped)
    bus.close()
    replayed = _lines(handle)
    assert [e["type"] for e in replayed[:-1]] == ["span.open", "span.close"]
    assert [e["seq"] for e in replayed] == [0, 1, 2]
    assert replayed[1]["wall_s"] == 0.5
    # Worker timestamps are preserved (seq, not ts, orders the stream).
    assert replayed[0]["ts"] == events[0]["ts"]


def test_replay_drop_counts_surface_in_run_end():
    bus, handle = _bus()
    bus.replay([], 7)
    bus.close()
    assert _lines(handle)[-1]["dropped_events"] == 7


def test_metric_deltas_are_movement_since_last_event():
    bus, handle = _bus()
    with observe() as ob:
        ob.metrics.counter_add("rows", 5)
        ob.metrics.gauge_set("coverage", 0.9)
        bus.emit_metric_deltas(ob.metrics)
        ob.metrics.counter_add("rows", 2)
        bus.emit_metric_deltas(ob.metrics)
    first, second = _lines(handle)
    assert first["counters"] == {"rows": 5}
    assert first["gauges"]["coverage"] == 0.9
    assert second["counters"] == {"rows": 2}  # the delta, not the total


def test_spans_stream_through_an_attached_bus():
    bus, handle = _bus()
    with observe(emitter=bus):
        with span("outer"):
            with span("inner", k=8):
                pass
    events = _lines(handle)
    assert [(e["type"], e["span"], e["depth"]) for e in events] == [
        ("span.open", "outer", 1),
        ("span.open", "inner", 2),
        ("span.close", "inner", 2),
        ("span.close", "outer", 1),
    ]
    assert events[3]["wall_s"] >= 0.0
    assert events[2]["attrs"] == {"k": 8}


def test_emit_helpers_are_inert_without_an_emitter():
    # No observation at all, and an observation without an emitter:
    # both must be silent no-ops.
    emit_event("stage", stage="mica", action="completed")
    emit_progress("mica", 1, 2)
    with observe():
        emit_event("stage", stage="mica", action="completed")
        emit_progress("mica", 1, 2)


def test_emit_helpers_route_to_the_active_emitter():
    bus, handle = _bus()
    with observe(emitter=bus):
        emit_event("stage", stage="dataset", action="completed")
        emit_progress("dataset.build", 1, 3)
    events = _lines(handle)
    assert [e["type"] for e in events] == ["stage", "progress"]
    assert events[1]["fraction"] == pytest.approx(1 / 3, abs=1e-6)


def test_sink_does_not_close_borrowed_handles():
    handle = io.StringIO()
    sink = JsonlSink(handle)
    sink.write_event({"type": "x"})
    sink.close()
    assert not handle.closed  # borrowed, not owned
