"""Run-history store: append/verify/query, sequence discipline, diffs."""

import json
import os

from repro.config import AnalysisConfig
from repro.obs import (
    HistoryStore,
    Observation,
    build_report,
    default_history_dir,
    diff_records,
    emit_bench,
    flatten_span_walls,
    render_diff,
)
from repro.obs.history import _is_regression


def _report(run_id="r1", walls=None):
    walls = walls or {"pca": 0.1, "kmeans": 0.4}
    ob = Observation(run_id=run_id)
    with ob.span("characterize"):
        for stage in walls:
            with ob.span(stage):
                pass
    ob.metrics.gauge_set("prominent.coverage", 0.8)
    doc = build_report(ob, config=AnalysisConfig.tiny(), command="characterize")

    # Pin every wall (measured ones jitter) so diffs are deterministic:
    # named stages get their requested value, containers get 1.0.
    def pin(node):
        node["wall_s"] = walls.get(node["name"], 1.0)
        for child in node.get("children") or []:
            pin(child)

    pin(doc["spans"])
    return doc


def test_append_run_and_read_back(tmp_path):
    store = HistoryStore(tmp_path)
    path = store.append_run(_report("abc123"))
    assert path.exists() and path.parent.name == "runs"
    records = store.records("run")
    assert len(records) == 1
    assert records[0]["seq"] == 1
    assert records[0]["run_id"] == "abc123"
    assert records[0]["schema"] == "history:run"
    assert records[0]["record"]["run_id"] == "abc123"


def test_sequence_numbers_are_monotonic_across_kinds(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_run(_report("r1"))
    store.append_bench("e2e_wall", {"speedup": 2.0})
    store.append_run(_report("r2"))
    seqs = [e["seq"] for e in store.records("run")] + [
        e["seq"] for e in store.records("bench")
    ]
    assert sorted(seqs) == [1, 2, 3]


def test_lost_counter_never_reuses_a_seq(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_run(_report("r1"))
    store.append_run(_report("r2"))
    os.unlink(store._counter_path())  # simulate a lost COUNTER file
    store.append_run(_report("r3"))
    assert [e["seq"] for e in store.records("run")] == [1, 2, 3]


def test_corrupt_record_is_quarantined_not_served(tmp_path):
    store = HistoryStore(tmp_path)
    path = store.append_run(_report("r1"))
    doc = json.loads(path.read_text())
    doc["record"]["run_id"] = "tampered"
    path.write_text(json.dumps(doc))
    assert store.records("run") == []
    assert not path.exists()  # moved aside, not deleted
    leftovers = [p.name for p in path.parent.iterdir()]
    assert any("corrupt" in name for name in leftovers)


def test_get_resolves_latest_seq_and_run_id_prefix(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_run(_report("aaa111"))
    store.append_run(_report("bbb222"))
    assert store.get("latest")["run_id"] == "bbb222"
    assert store.get("1")["run_id"] == "aaa111"
    assert store.get("bbb")["run_id"] == "bbb222"
    assert store.get("zzz") is None


def test_bench_baseline_skips_the_current_payload(tmp_path):
    store = HistoryStore(tmp_path)
    old = {"speedup": 2.0, "preset": "tiny"}
    new = {"speedup": 1.5, "preset": "tiny"}
    store.append_bench("e2e_wall", old)
    store.append_bench("e2e_wall", new)
    baseline = store.bench_baseline("e2e_wall", current=new)
    assert baseline["record"] == old
    # Without a current payload, the newest record is the baseline.
    assert store.bench_baseline("e2e_wall")["record"] == new
    assert store.bench_baseline("other") is None


def test_emit_bench_appends_to_history_when_env_set(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "hist"))
    emit_bench("tiny_probe", {"speedup": 3.0, "note": "x"})
    capsys.readouterr()
    records = HistoryStore(tmp_path / "hist").records("bench", name="tiny_probe")
    assert len(records) == 1
    assert records[0]["record"]["speedup"] == 3.0
    assert records[0]["git_sha"]  # stamped from the repo


def test_emit_bench_without_env_stays_out_of_history(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
    monkeypatch.setattr("pathlib.Path.home", lambda: tmp_path)
    emit_bench("tiny_probe", {"speedup": 3.0})
    capsys.readouterr()
    assert not (tmp_path / ".repro" / "history").exists()


def test_default_history_dir_prefers_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
    assert default_history_dir() == tmp_path
    monkeypatch.delenv("REPRO_HISTORY_DIR")
    assert default_history_dir().name == "history"


def test_default_history_dir_headless_falls_back_to_tempdir(
    tmp_path, monkeypatch, caplog
):
    """No usable home (scrubbed $HOME): warn once, use one temp dir.

    Regression: ``Path.home()`` in a headless container either raises
    or yields a directory that does not exist, and the history append —
    the last step of a finished run — crashed on it.  The store must
    instead land in a per-process temporary directory, announced at
    WARNING exactly once, and stay *stable* across calls so every
    record of the run ends up in the same place.
    """
    import logging

    from repro.obs import history as H

    # Scrub every path Path.home() consults, plus our own override.
    for var in ("HOME", "USERPROFILE", "HOMEDRIVE", "HOMEPATH", "REPRO_HISTORY_DIR"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setattr(
        "pathlib.Path.home",
        classmethod(lambda cls: (_ for _ in ()).throw(RuntimeError("no home"))),
    )
    monkeypatch.setattr(H, "_FALLBACK_HISTORY_DIR", None)
    with caplog.at_level(logging.WARNING, logger="repro.obs.history"):
        first = default_history_dir()
    assert first.is_dir()
    assert "repro-history-" in first.name
    warned = [r for r in caplog.records if "no usable home" in r.getMessage()]
    assert len(warned) == 1
    assert default_history_dir() == first  # cached: one store per process
    # And it actually works as a store root.
    HistoryStore(first).append_run(_report())
    # A later $HOME restoration is irrelevant while the env override wins.
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
    assert default_history_dir() == tmp_path


def test_flatten_span_walls_sums_repeated_names():
    report = _report(walls={"kmeans": 0.3})
    walls = flatten_span_walls(report["spans"])
    assert walls["kmeans"] == 0.3
    assert "characterize" in walls


def test_diff_flags_stage_wall_regressions(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_run(_report("r1", walls={"pca": 0.1, "kmeans": 0.4}))
    store.append_run(_report("r2", walls={"pca": 0.1, "kmeans": 0.9}))
    a, b = store.records("run")
    diff = diff_records(a, b, tolerance=0.10)
    # Stage names carry no direction hint; the stage-wall section
    # defaults to lower-is-better, so the kmeans blow-up is flagged.
    assert "kmeans" in diff["regressions"]
    assert "pca" not in diff["regressions"]
    text = render_diff(diff)
    assert "REGRESSION" in text and "kmeans" in text


def test_diff_bench_records_infers_direction_from_names(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_bench("e2e_wall", {"speedup": 2.0, "optimized_seconds": 1.0})
    store.append_bench("e2e_wall", {"speedup": 1.2, "optimized_seconds": 1.05})
    a, b = store.records("bench")
    diff = diff_records(a, b, tolerance=0.10)
    assert "speedup" in diff["regressions"]  # dropped >10%: bad
    assert "optimized_seconds" not in diff["regressions"]  # +5% < tolerance
    improved = diff_records(b, a, tolerance=0.10)
    assert "speedup" not in improved["regressions"]  # it went up


def test_direction_inference_rules():
    assert _is_regression("stage.wall_s", 1.0, 2.0, 0.1)
    assert not _is_regression("stage.wall_s", 2.0, 1.0, 0.1)
    assert _is_regression("rows_per_second", 100.0, 50.0, 0.1)
    assert not _is_regression("rows_per_second", 50.0, 100.0, 0.1)
    # No hint, no default: never flagged.
    assert not _is_regression("mystery", 1.0, 100.0, 0.1)
    # No hint, section default supplies the direction.
    assert _is_regression("mystery", 1.0, 100.0, 0.1, default="lower")
    # Within tolerance is never a regression.
    assert not _is_regression("wall_s", 1.0, 1.05, 0.1)


def test_render_diff_reports_no_regressions(tmp_path):
    store = HistoryStore(tmp_path)
    store.append_run(_report("r1"))
    store.append_run(_report("r2"))
    a, b = store.records("run")
    diff = diff_records(a, b, tolerance=5.0)
    assert diff["regressions"] == []
    assert "no regressions" in render_diff(diff)
