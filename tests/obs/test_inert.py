"""Instrumentation is behaviorally inert: identical results on or off.

The observability layer only reads values the pipeline computes anyway
— it never consumes random numbers or changes control flow — so a run
with an active observation must be bit-identical to one without.
"""

import numpy as np

from repro.config import AnalysisConfig
from repro.core import build_dataset, run_characterization
from repro.obs import missing_stages, observe
from repro.obs.report import build_report
from repro.suites import all_benchmarks


def _run(config, benchmarks, observed):
    if observed:
        with observe(run_id="bitcheck") as ob:
            dataset = build_dataset(benchmarks, config)
            result = run_characterization(dataset, config, select_key=True)
        return dataset, result, ob
    dataset = build_dataset(benchmarks, config)
    result = run_characterization(dataset, config, select_key=True)
    return dataset, result, None


def test_observed_run_is_bit_identical():
    # Accelerated engine forced: the tiny clustering sits below the
    # auto crossover, and the skipped-row gauge assertion at the end
    # needs the bound accounting the reference path does not collect.
    config = AnalysisConfig.tiny().replace(kmeans_engine="accelerated")
    benchmarks = [b for b in all_benchmarks() if b.suite == "BMW"]

    dataset_off, result_off, _ = _run(config, benchmarks, observed=False)
    dataset_on, result_on, ob = _run(config, benchmarks, observed=True)

    np.testing.assert_array_equal(dataset_off.features, dataset_on.features)
    np.testing.assert_array_equal(result_off.space, result_on.space)
    np.testing.assert_array_equal(
        result_off.clustering.labels, result_on.clustering.labels
    )
    assert result_off.clustering.bic == result_on.clustering.bic
    assert result_off.key_characteristics == result_on.key_characteristics

    # ... and the observed run actually recorded the whole pipeline.
    report = build_report(ob, config=config)
    assert missing_stages(report) == []
    counters = report["metrics"]["counters"]
    assert counters["kmeans.restarts"] > 0
    gauges = report["metrics"]["gauges"]
    assert 0.0 < gauges["kmeans.skipped_row_ratio"] < 1.0
