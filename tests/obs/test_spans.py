"""Span nesting, no-op inertness, and worker snapshot merging."""

import pickle

import pytest

from repro.obs import (
    Observation,
    Span,
    active,
    capture,
    current,
    metrics,
    observe,
    span,
)
from repro.obs.metrics import NOOP_REGISTRY


def test_span_is_noop_without_observation():
    assert not active()
    with span("anything", x=1) as sp:
        sp.set(y=2)  # accepted, recorded nowhere
    assert current() is None
    assert metrics() is NOOP_REGISTRY


def test_observe_installs_and_restores():
    assert not active()
    with observe(run_id="abc") as ob:
        assert active()
        assert current() is ob
        assert ob.run_id == "abc"
    assert not active()


def test_observe_restores_on_exception():
    with pytest.raises(RuntimeError):
        with observe():
            raise RuntimeError("boom")
    assert not active()


def test_spans_nest_into_a_tree():
    with observe() as ob:
        with span("a"):
            with span("b", depth=2):
                pass
            with span("c"):
                pass
        with span("d"):
            pass
    root = ob.root
    assert [child.name for child in root.children] == ["a", "d"]
    assert [child.name for child in root.children[0].children] == ["b", "c"]
    assert root.children[0].children[0].attrs == {"depth": 2}


def test_span_records_nonnegative_durations_and_closes_on_error():
    with observe() as ob:
        with pytest.raises(ValueError):
            with span("fails"):
                raise ValueError("x")
        with span("after"):
            pass
    names = [child.name for child in ob.root.children]
    assert names == ["fails", "after"]
    failed = ob.root.children[0]
    assert failed.attrs.get("error") == "ValueError"
    for node in ob.root.children:
        assert node.wall_s >= 0.0
        assert node.cpu_s >= 0.0


def test_set_attrs_at_exit():
    with observe() as ob:
        with span("stage") as sp:
            sp.set(bic=-12.5, label="x")
    assert ob.root.children[0].attrs == {"bic": -12.5, "label": "x"}


def test_attrs_coerced_json_safe():
    class Weird:
        def __str__(self):
            return "weird"

    with observe() as ob:
        with span("s", obj=Weird(), n=1, f=0.5, b=True, none=None):
            pass
    attrs = ob.root.children[0].attrs
    assert attrs["obj"] == "weird"
    assert attrs["n"] == 1 and attrs["f"] == 0.5 and attrs["b"] is True
    assert attrs["none"] is None


def test_span_dict_roundtrip():
    with observe() as ob:
        with span("outer", k=1):
            with span("inner"):
                pass
    data = ob.root.to_dict()
    rebuilt = Span.from_dict(data)
    assert rebuilt.to_dict() == data
    assert rebuilt.names() == {"run", "outer", "inner"}


def test_find_and_names():
    with observe() as ob:
        with span("kmeans"):
            with span("kmeans.restart"):
                pass
    assert ob.root.find("kmeans.restart") is not None
    assert ob.root.find("missing") is None
    assert "kmeans" in ob.root.names()


def test_capture_isolates_and_merges_under_current_span():
    with observe() as ob:
        with span("dataset.build"):
            with capture("BMW/gait") as worker:
                assert current() is worker
                with span("mica"):
                    pass
                metrics().counter_add("rows", 4)
                snap = worker.snapshot()
            # capture restored the parent observation
            assert current() is ob
            ob.merge_snapshot(snap)
    build = ob.root.children[0]
    assert build.name == "dataset.build"
    task = build.children[0]
    assert task.name == "task"
    assert task.attrs["label"] == "BMW/gait"
    assert [c.name for c in task.children] == ["mica"]
    assert ob.metrics.counter_value("rows") == 4


def test_snapshot_pickles():
    ob = Observation(run_id="w")
    ob.metrics.counter_add("x", 2)
    snap = ob.snapshot()
    clone = pickle.loads(pickle.dumps(snap))
    assert clone.span["name"] == "run"
    assert clone.metrics["counters"] == {"x": 2}
