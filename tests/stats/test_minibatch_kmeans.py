"""Tests for batch-at-a-time k-means: mini-batch, streaming Lloyd, scoring."""

import numpy as np
import pytest

from repro.stats import (
    Clustering,
    FrozenScorer,
    MiniBatchKMeans,
    StreamingLloyd,
    bic_from_stats,
    kmeans_bic,
)
from repro.stats.kmeans import _lloyd
from repro.stats.kmeans_engine import assign_points


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(3)
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0], [8.0, 8.0]])
    return np.vstack([c + 0.4 * rng.normal(size=(50, 2)) for c in centers])


def _batches(points, size):
    for start in range(0, len(points), size):
        yield points[start : start + size]


def _init(points, k, seed):
    rows = np.random.default_rng(seed).choice(len(points), size=k, replace=False)
    return points[rows]


# --- bic_from_stats --------------------------------------------------------


def test_bic_matches_exact_formula(blobs):
    centers = _init(blobs, 4, 0)
    labels, assigned, _ = assign_points(blobs, centers)
    sse = float(np.square(assigned).sum())
    counts = np.bincount(labels, minlength=4)
    streamed = bic_from_stats(len(blobs), blobs.shape[1], sse, counts)
    exact = kmeans_bic(blobs, labels, centers)
    assert streamed == pytest.approx(exact, rel=1e-12)


def test_bic_degenerate_n_le_k():
    assert bic_from_stats(3, 2, 1.0, np.array([1, 1, 1])) == float("-inf")


# --- MiniBatchKMeans -------------------------------------------------------


def test_minibatch_recovers_blobs(blobs):
    mb = MiniBatchKMeans(_init(blobs, 4, 14))  # init with one row per blob
    order = np.random.default_rng(5).permutation(len(blobs))  # i.i.d. stream
    for _ in range(5):
        for batch in _batches(blobs[order], 32):
            mb.partial_fit(batch)
    truth = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0], [8.0, 8.0]])
    for t in truth:
        assert np.min(np.linalg.norm(mb.centers - t, axis=1)) < 1.0


def test_minibatch_counts_accumulate(blobs):
    mb = MiniBatchKMeans(_init(blobs, 4, 2))
    for batch in _batches(blobs, 16):
        mb.partial_fit(batch)
    assert mb.counts.sum() == len(blobs)
    assert mb.n_updates == len(range(0, len(blobs), 16))


def test_minibatch_dead_cluster_reseeded(blobs):
    # A center far from every point attracts nothing and gets re-seeded
    # from the batch's farthest rows.
    init = np.vstack([_init(blobs, 3, 3), [[1e6, 1e6]]])
    mb = MiniBatchKMeans(init)
    mb.partial_fit(blobs[:64])
    assert np.linalg.norm(mb.centers[3]) < 1e3


def test_minibatch_rejects_bad_input(blobs):
    with pytest.raises(ValueError):
        MiniBatchKMeans(np.empty((0, 2)))
    mb = MiniBatchKMeans(_init(blobs, 2, 4))
    with pytest.raises(ValueError):
        mb.partial_fit(np.zeros((3, 5)))
    assert mb.partial_fit(np.empty((0, 2))) is mb  # no-op


# --- StreamingLloyd --------------------------------------------------------


def _run_streaming(points, init, max_iter, batch_size):
    lloyd = StreamingLloyd(init, len(points), max_iter)
    while lloyd.wants_pass():
        for batch in _batches(points, batch_size):
            lloyd.fold_batch(batch)
        lloyd.end_pass()
    return lloyd


@pytest.mark.parametrize("batch_size", [7, 32, 1000])
def test_streaming_lloyd_matches_reference(blobs, batch_size):
    """Batched Lloyd == whole-array Lloyd from the same initial centers."""
    init = _init(blobs, 4, 6)
    centers, labels, inertia, n_iter, _ = _lloyd(blobs, init, 100)
    lloyd = _run_streaming(blobs, init, 100, batch_size)
    final_labels, _, _ = assign_points(blobs, lloyd.centers)
    assert lloyd.converged
    assert lloyd.n_iter == n_iter
    np.testing.assert_array_equal(final_labels, labels)
    np.testing.assert_allclose(lloyd.centers, centers, rtol=1e-12, atol=1e-12)


def test_streaming_lloyd_with_empty_cluster_reseed(blobs):
    """A far-away initial center forces the reseed path in both engines."""
    init = np.vstack([_init(blobs, 3, 7), [[1e6, 1e6]]])
    centers, labels, _, n_iter, _ = _lloyd(blobs, init, 100)
    lloyd = _run_streaming(blobs, init, 100, 13)
    final_labels, _, _ = assign_points(blobs, lloyd.centers)
    assert lloyd.n_iter == n_iter
    np.testing.assert_array_equal(final_labels, labels)
    np.testing.assert_allclose(lloyd.centers, centers, rtol=1e-12, atol=1e-12)


def test_streaming_lloyd_respects_max_iter(blobs):
    lloyd = _run_streaming(blobs, _init(blobs, 4, 8), 1, 32)
    assert lloyd.n_iter == 1
    assert not lloyd.wants_pass()


def test_streaming_lloyd_guards(blobs):
    init = _init(blobs, 4, 9)
    with pytest.raises(ValueError):
        StreamingLloyd(init, len(blobs), 0)
    lloyd = StreamingLloyd(init, len(blobs), 10)
    lloyd.fold_batch(blobs[:10])
    with pytest.raises(ValueError):
        lloyd.end_pass()  # pass covered 10 rows, expected all
    done = _run_streaming(blobs, init, 100, 64)
    with pytest.raises(RuntimeError):
        done.fold_batch(blobs[:10])


# --- FrozenScorer ----------------------------------------------------------


def test_scorer_matches_direct_assignment(blobs):
    centers = _run_streaming(blobs, _init(blobs, 4, 10), 100, 32).centers
    scorer = FrozenScorer(centers, len(blobs))
    for batch in _batches(blobs, 17):
        scorer.score_batch(batch)
    labels, assigned, _ = assign_points(blobs, centers)
    np.testing.assert_array_equal(scorer.labels, labels)
    np.testing.assert_array_equal(scorer.counts, np.bincount(labels, minlength=4))
    assert scorer.sse == pytest.approx(float(np.square(assigned).sum()), rel=1e-12)
    assert scorer.bic(2) == pytest.approx(kmeans_bic(blobs, labels, centers), rel=1e-12)


@pytest.mark.parametrize("batch_size", [1, 9, 1000])
def test_scorer_representatives_match_exact(blobs, batch_size):
    centers = _run_streaming(blobs, _init(blobs, 4, 11), 100, 32).centers
    scorer = FrozenScorer(centers, len(blobs))
    for batch in _batches(blobs, batch_size):
        scorer.score_batch(batch)
    labels, assigned, _ = assign_points(blobs, centers)
    exact = Clustering(
        centers=centers,
        labels=labels,
        bic=0.0,
        inertia=float(np.square(assigned).sum()),
        n_iter=1,
        assigned_sq=np.square(assigned),
    )
    np.testing.assert_array_equal(scorer.rep_rows, exact.representatives(blobs))


def test_scorer_empty_batch(blobs):
    scorer = FrozenScorer(blobs[:3], len(blobs))
    out = scorer.score_batch(np.empty((0, 2)))
    assert len(out) == 0
    assert scorer.sse == 0.0
