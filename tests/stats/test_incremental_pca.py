"""Tests for streaming (sufficient-statistics) PCA."""

import numpy as np
import pytest

from repro.stats import IncrementalPCA, StreamingProjector, fit_pca
from repro.stats.normalize import Normalizer


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(11)
    base = rng.normal(size=(200, 8))
    # Correlated columns so the spectrum is interesting.
    base[:, 3] = 0.9 * base[:, 0] + 0.1 * base[:, 3]
    base[:, 5] = -0.7 * base[:, 1] + 0.3 * base[:, 5]
    base[:, 7] = 2.5  # constant column: unit-scale normalizer path
    return base


def _fit_in_batches(matrix, sizes):
    ipca = IncrementalPCA(matrix.shape[1])
    start = 0
    for size in sizes:
        ipca.partial_fit(matrix[start : start + size])
        start += size
    ipca.partial_fit(matrix[start:])
    return ipca.finalize()


def test_matches_exact_pca_spectrum(matrix):
    exact = fit_pca(matrix)
    stream = _fit_in_batches(matrix, [7, 50, 1, 64])
    np.testing.assert_allclose(stream.stds, exact.stds, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(
        stream.explained_ratio, exact.explained_ratio, rtol=1e-9, atol=1e-12
    )


def test_matches_exact_normalizer(matrix):
    exact = Normalizer.fit(matrix)
    stream = _fit_in_batches(matrix, [13, 13, 13]).normalizer
    np.testing.assert_allclose(stream.mean, exact.mean, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(stream.scale, exact.scale, rtol=1e-12, atol=1e-12)
    # The constant column keeps unit scale in both.
    assert stream.scale[7] == 1.0


def test_components_match_up_to_sign(matrix):
    exact = fit_pca(matrix)
    stream = _fit_in_batches(matrix, [100])
    for j in range(exact.n_components):
        dot = abs(float(exact.components[:, j] @ stream.components[:, j]))
        assert dot == pytest.approx(1.0, abs=1e-8)


def test_retention_agrees_with_exact(matrix):
    exact = fit_pca(matrix).retained(1.0)
    stream = _fit_in_batches(matrix, [40, 40]).retained(1.0)
    assert stream.n_components == exact.n_components


def test_batch_partition_invariance(matrix):
    one = _fit_in_batches(matrix, [200])
    many = _fit_in_batches(matrix, [1] * 30 + [17, 90])
    np.testing.assert_allclose(one.stds, many.stds, rtol=1e-12, atol=1e-14)


def test_empty_batch_is_noop(matrix):
    ipca = IncrementalPCA(8).partial_fit(matrix)
    n_before = ipca.n
    ipca.partial_fit(np.empty((0, 8)))
    assert ipca.n == n_before


def test_rejects_bad_shapes():
    ipca = IncrementalPCA(4)
    with pytest.raises(ValueError):
        ipca.partial_fit(np.zeros(4))
    with pytest.raises(ValueError):
        ipca.partial_fit(np.zeros((3, 5)))
    with pytest.raises(ValueError):
        ipca.finalize()  # fewer than two rows seen
    with pytest.raises(ValueError):
        IncrementalPCA(0)


def test_projector_reproduces_rescaled_space(matrix):
    """Streamed batch projections == the exact path's rescaled space."""
    exact = fit_pca(matrix).retained(1.0)
    scores = exact.transform(matrix)
    std = scores.std(axis=0)
    scale = np.where(std > 0, std, 1.0)
    space = (scores - scores.mean(axis=0)) / scale

    stream_model = _fit_in_batches(matrix, [64, 64]).retained(1.0)
    projector = StreamingProjector.from_model(stream_model, len(matrix))
    got = np.vstack(
        [projector.transform(matrix[i : i + 50]) for i in range(0, len(matrix), 50)]
    )
    # Signs may flip per component; compare absolute coordinates.
    np.testing.assert_allclose(np.abs(got), np.abs(space), rtol=1e-6, atol=1e-8)


def test_projector_dimensions(matrix):
    model = _fit_in_batches(matrix, [200]).retained(1.0)
    projector = StreamingProjector.from_model(model, len(matrix))
    assert projector.n_components == model.n_components
    assert projector.transform(matrix[:5]).shape == (5, model.n_components)
