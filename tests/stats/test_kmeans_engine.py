"""Engine/reference equivalence for the accelerated k-means.

The triangle-inequality engine must be *bit-identical* to the reference
Lloyd path — labels, centers, inertia, iteration count and the
per-point assigned distances — for any input, including the
empty-cluster reseeding path.  That contract is what keeps the engine
choice (and ``REPRO_REFERENCE_KMEANS``) out of every cache key.
Hypothesis drives randomized point sets through both paths; directed
cases pin the degenerate inputs and the reseeding order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kmeans
from repro.stats.kmeans import Clustering, _lloyd
from repro.stats.kmeans_engine import (
    AUTO_CROSSOVER_ENTRIES,
    REFERENCE_KMEANS_ENV,
    EngineStats,
    assign_points,
    assigned_sq_distances,
    farthest_rows,
    group_means,
    lloyd_accelerated,
    reference_kmeans_enabled,
    resolve_engine,
)
from repro.synth import generator

SETTINGS = dict(max_examples=30, deadline=None)


def assert_identical(ref, acc):
    """Both Lloyd paths returned exactly the same fit."""
    r_centers, r_labels, r_inertia, r_iter, r_sq = ref
    a_centers, a_labels, a_inertia, a_iter, a_sq = acc
    np.testing.assert_array_equal(r_labels, a_labels)
    np.testing.assert_array_equal(r_centers, a_centers)
    assert r_inertia == a_inertia
    assert r_iter == a_iter
    np.testing.assert_array_equal(r_sq, a_sq)


def run_both(points, k, seed=0, max_iter=50):
    rng = np.random.default_rng(seed)
    init = points[rng.choice(len(points), size=k, replace=False)]
    ref = _lloyd(points, init, max_iter)
    acc = lloyd_accelerated(points, init, max_iter)
    assert_identical(ref, acc)
    return ref


@st.composite
def point_sets(draw):
    """Random (points, k) with duplicate-heavy and continuous regimes."""
    n = draw(st.integers(min_value=2, max_value=80))
    d = draw(st.integers(min_value=1, max_value=8))
    k = draw(st.integers(min_value=1, max_value=min(n, 12)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    quantize = draw(st.booleans())
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    if quantize:
        # Coarse grid: many exact duplicates and exact distance ties,
        # which force the empty-cluster and tie-break paths.
        points = np.round(points)
    return points, k, seed


@given(point_sets())
@settings(**SETTINGS)
def test_engine_matches_reference(case):
    points, k, seed = case
    run_both(points, k, seed=seed)


@given(st.integers(min_value=0, max_value=2**31))
@settings(**SETTINGS)
def test_engine_matches_reference_with_restarts(seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(60, 4))
    a = kmeans(points, 6, restarts=3, rng=generator("kme", seed), engine="accelerated")
    b = kmeans(points, 6, restarts=3, rng=generator("kme", seed), engine="reference")
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.centers, b.centers)
    assert a.bic == b.bic
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    np.testing.assert_array_equal(a.assigned_sq, b.assigned_sq)


# ---------------------------------------------------------------- degenerate


def test_duplicate_points_exceeding_k():
    # 4 distinct rows, each repeated many times, k below the multiplicity.
    base = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0], [5.0, 5.0]])
    points = np.repeat(base, 12, axis=0)
    for k in (2, 3, 4, 6):
        run_both(points, k, seed=k)


def test_single_feature_data():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(50, 1))
    for k in (1, 2, 7):
        run_both(points, k, seed=k)
    # Quantized single-feature (grouped-mean summation-order edge).
    run_both(np.round(points), 5, seed=11)


def test_k_equals_n():
    rng = np.random.default_rng(4)
    points = rng.normal(size=(12, 3))
    centers, labels, inertia, _, _ = run_both(points, 12, seed=1)
    # Every point is its own cluster: zero inertia.
    assert inertia == 0.0
    assert len(np.unique(labels)) == 12


def test_all_identical_rows():
    points = np.full((20, 3), 2.5)
    for k in (1, 3, 20):
        centers, labels, inertia, _, _ = run_both(points, k, seed=k)
        assert inertia == 0.0


def test_empty_cluster_reseeding_path():
    # Quantized 1-D data with k near n produces empty clusters across
    # iterations; the two paths must still agree exactly.
    rng = np.random.default_rng(5)
    points = np.round(rng.normal(size=(40, 1)) * 2)
    for k in (10, 20, 35):
        run_both(points, k, seed=k)


# ------------------------------------------------------------- reseed order


def reference_farthest(assigned, m):
    """Full descending stable argsort — the pinned reseeding order.

    (The pre-engine implementation used the default unstable argsort,
    whose tie order among equal distances was arbitrary; the shared
    kernel fixes ties to the well-defined stable order, which both
    Lloyd paths now observe.)
    """
    return np.argsort(assigned, kind="stable")[::-1][:m]


@given(
    st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40),
    st.integers(min_value=0, max_value=12),
)
@settings(**SETTINGS)
def test_farthest_rows_matches_full_argsort(values, m):
    # Small-integer values make ties the common case, which is exactly
    # where argpartition orderings can diverge from argsort.
    assigned = np.asarray(values, dtype=np.float64)
    m = min(m, len(assigned))
    np.testing.assert_array_equal(
        farthest_rows(assigned, m), reference_farthest(assigned, m)
    )


def test_farthest_rows_all_ties():
    assigned = np.full(9, 3.0)
    np.testing.assert_array_equal(
        farthest_rows(assigned, 4), reference_farthest(assigned, 4)
    )


def test_farthest_rows_empty_and_full():
    assigned = np.array([1.0, 3.0, 2.0])
    assert len(farthest_rows(assigned, 0)) == 0
    np.testing.assert_array_equal(
        farthest_rows(assigned, 3), reference_farthest(assigned, 3)
    )


# ------------------------------------------------------------------ kernels


def test_assign_points_ties_toward_lowest_center():
    points = np.array([[0.0, 0.0]])
    centers = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]])
    labels, assigned, second = assign_points(points, centers)
    assert labels[0] == 0
    assert assigned[0] == second[0] == 1.0


def test_assign_points_single_center():
    points = np.array([[3.0, 4.0], [0.0, 0.0]])
    labels, assigned, second = assign_points(points, np.zeros((1, 2)))
    np.testing.assert_array_equal(labels, [0, 0])
    np.testing.assert_allclose(assigned, [5.0, 0.0])
    assert np.isinf(second).all()


def test_group_means_keeps_empty_cluster_centers():
    points = np.array([[1.0, 1.0], [3.0, 3.0]])
    centers = np.array([[0.0, 0.0], [9.0, 9.0], [5.0, 5.0]])
    labels = np.array([0, 0])
    out = group_means(points, labels, centers)
    np.testing.assert_allclose(out[0], [2.0, 2.0])
    np.testing.assert_array_equal(out[1], [9.0, 9.0])
    np.testing.assert_array_equal(out[2], [5.0, 5.0])


def test_assigned_sq_distances_epilogue():
    points = np.array([[0.0, 0.0], [3.0, 4.0]])
    centers = np.array([[0.0, 0.0]])
    labels = np.array([0, 0])
    np.testing.assert_allclose(
        assigned_sq_distances(points, centers, labels), [0.0, 25.0]
    )


# ------------------------------------------------------ stats + early exit


def test_engine_skips_distance_rows():
    rng = np.random.default_rng(6)
    centers = np.array([[0.0, 0.0], [30.0, 0.0], [0.0, 30.0], [30.0, 30.0]])
    points = np.vstack([c + rng.normal(size=(100, 2)) for c in centers])
    init = points[rng.choice(len(points), size=4, replace=False)]
    stats = EngineStats()
    lloyd_accelerated(points, init, 50, stats=stats)
    assert stats.runs == 1
    assert stats.iterations >= 2
    assert stats.point_rows_computed < stats.point_rows_total
    assert 0.0 < stats.skipped_ratio < 1.0
    assert stats.distance_evals_computed >= stats.point_rows_computed


def test_zero_drift_early_exit():
    # k == 1 converges after one center update; the zero-drift exit must
    # stop both paths at the same iteration count.
    rng = np.random.default_rng(7)
    points = rng.normal(size=(30, 2))
    ref = _lloyd(points, points[:1], 50)
    acc = lloyd_accelerated(points, points[:1], 50)
    assert_identical(ref, acc)
    assert ref[3] <= 3


# -------------------------------------------------------------- dispatching


def test_resolve_engine_explicit():
    assert resolve_engine("accelerated") == "accelerated"
    assert resolve_engine("reference") == "reference"
    # Explicit choices ignore the shape entirely.
    assert resolve_engine("accelerated", n=10, k=2) == "accelerated"
    assert resolve_engine("reference", n=100_000, k=300) == "reference"
    with pytest.raises(ValueError):
        resolve_engine("fast")


def test_resolve_engine_auto_honors_env(monkeypatch):
    monkeypatch.delenv(REFERENCE_KMEANS_ENV, raising=False)
    assert not reference_kmeans_enabled()
    assert resolve_engine("auto") == "accelerated"
    monkeypatch.setenv(REFERENCE_KMEANS_ENV, "1")
    assert reference_kmeans_enabled()
    assert resolve_engine("auto") == "reference"
    # The environment also beats a shape above the crossover.
    assert resolve_engine("auto", n=77_000, k=300) == "reference"
    # An explicit choice wins over the environment.
    assert resolve_engine("accelerated") == "accelerated"
    monkeypatch.setenv(REFERENCE_KMEANS_ENV, "0")
    assert not reference_kmeans_enabled()


def test_resolve_engine_auto_adapts_to_shape(monkeypatch):
    monkeypatch.delenv(REFERENCE_KMEANS_ENV, raising=False)
    # Small problems (the tiny preset's 308 x 8 clustering) stay on the
    # plain Lloyd — the bounds cannot amortize their bookkeeping.
    assert resolve_engine("auto", n=308, k=8) == "reference"
    # The paper-scale clustering lands on the accelerated engine.
    assert resolve_engine("auto", n=77_000, k=300) == "accelerated"
    # The boundary itself: strictly-below stays reference.
    assert resolve_engine("auto", n=AUTO_CROSSOVER_ENTRIES - 1, k=1) == "reference"
    assert resolve_engine("auto", n=AUTO_CROSSOVER_ENTRIES, k=1) == "accelerated"
    # Unknown shape keeps the old unconditional default.
    assert resolve_engine("auto") == "accelerated"
    assert resolve_engine("auto", n=500) == "accelerated"


@given(point_sets())
@settings(max_examples=15, deadline=None)
def test_auto_bit_identical_to_selected_engine(case):
    # Whatever ``auto`` selects, the fit is the one both engines agree
    # on — so adaptive selection can never change a result.
    points, k, seed = case
    auto = kmeans(points, k, restarts=2, rng=generator("kme-auto", seed))
    explicit = resolve_engine("auto", n=len(points), k=min(k, len(points)))
    chosen = kmeans(
        points, k, restarts=2, rng=generator("kme-auto", seed), engine=explicit
    )
    other = kmeans(
        points,
        k,
        restarts=2,
        rng=generator("kme-auto", seed),
        engine="reference" if explicit == "accelerated" else "accelerated",
    )
    for fit in (chosen, other):
        np.testing.assert_array_equal(auto.labels, fit.labels)
        np.testing.assert_array_equal(auto.centers, fit.centers)
        assert auto.bic == fit.bic
        assert auto.inertia == fit.inertia
        assert auto.n_iter == fit.n_iter


def test_kmeans_env_flag_routes_reference(monkeypatch):
    rng = np.random.default_rng(8)
    points = rng.normal(size=(40, 3))
    monkeypatch.setenv(REFERENCE_KMEANS_ENV, "1")
    via_env = kmeans(points, 4, rng=generator("kme-env", 1))
    monkeypatch.delenv(REFERENCE_KMEANS_ENV)
    default = kmeans(points, 4, rng=generator("kme-env", 1))
    np.testing.assert_array_equal(via_env.labels, default.labels)
    np.testing.assert_array_equal(via_env.centers, default.centers)
    assert via_env.bic == default.bic


def test_kmeans_collects_engine_stats():
    rng = np.random.default_rng(9)
    points = rng.normal(size=(60, 2))
    stats = EngineStats()
    # Force the accelerated engine: at this size ``auto`` would pick
    # the reference path, which collects no bound accounting.
    kmeans(
        points,
        5,
        restarts=3,
        rng=generator("kme-st", 1),
        engine="accelerated",
        engine_stats=stats,
    )
    assert stats.runs == 3
    assert stats.point_rows_total > 0


# ------------------------------------------------------------ reused values


def test_clustering_carries_assigned_sq():
    rng = np.random.default_rng(10)
    points = rng.normal(size=(50, 3))
    c = kmeans(points, 4, rng=generator("kme-sq", 1))
    assert c.assigned_sq is not None
    np.testing.assert_array_equal(
        c.assigned_sq, assigned_sq_distances(points, c.centers, c.labels)
    )
    assert c.inertia == float(c.assigned_sq.sum())


def test_representatives_without_assigned_sq_fallback():
    rng = np.random.default_rng(11)
    points = rng.normal(size=(40, 2))
    fitted = kmeans(points, 3, rng=generator("kme-rep", 1))
    # A loaded clustering has no assigned_sq; both must agree.
    bare = Clustering(
        centers=fitted.centers,
        labels=fitted.labels,
        bic=fitted.bic,
        inertia=fitted.inertia,
        n_iter=fitted.n_iter,
    )
    np.testing.assert_array_equal(
        fitted.representatives(points), bare.representatives(points)
    )


def test_representatives_handles_empty_clusters():
    points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    c = Clustering(
        centers=np.array([[0.0, 0.0], [5.0, 5.0], [100.0, 100.0]]),
        labels=np.array([0, 0, 1]),
        bic=0.0,
        inertia=0.0,
        n_iter=1,
    )
    reps = c.representatives(points)
    assert reps[0] == 0
    assert reps[1] == 2
    # Empty cluster falls back to the globally nearest point.
    assert reps[2] == 2
