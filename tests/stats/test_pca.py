"""Tests for PCA and the rescaled PCA space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import fit_pca, rescaled_pca_space


@pytest.fixture
def data():
    rng = np.random.default_rng(3)
    # Three latent dimensions embedded in eight columns.
    latent = rng.normal(size=(300, 3))
    mix = rng.normal(size=(3, 8))
    return latent @ mix + 0.01 * rng.normal(size=(300, 8))


def test_components_ordered_by_variance(data):
    model = fit_pca(data)
    assert (np.diff(model.stds) <= 1e-9).all()


def test_scores_are_uncorrelated(data):
    model = fit_pca(data)
    scores = model.transform(data)
    cov = np.cov(scores.T)
    off_diag = cov - np.diag(np.diag(cov))
    assert np.abs(off_diag).max() < 1e-8


def test_explained_ratio_sums_to_one(data):
    model = fit_pca(data)
    assert model.explained_ratio.sum() == pytest.approx(1.0)


def test_kaiser_retention_finds_latent_dimension(data):
    model = fit_pca(data).retained(1.0)
    # Three strong latent dimensions -> three retained components.
    assert model.n_components == 3


def test_retained_keeps_at_least_one():
    x = np.random.default_rng(4).normal(size=(50, 3))
    model = fit_pca(x).retained(min_std=1e9)
    assert model.n_components == 1


def test_loadings_are_orthonormal(data):
    model = fit_pca(data)
    gram = model.components.T @ model.components
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)


def test_rejects_single_observation():
    with pytest.raises(ValueError):
        fit_pca(np.ones((1, 3)))


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        fit_pca(np.arange(10.0))


def test_rescaled_space_unit_variance(data):
    space = rescaled_pca_space(data)
    assert np.allclose(space.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(space.std(axis=0), 1.0, atol=1e-9)


def test_rescaled_space_handles_constant_columns():
    rng = np.random.default_rng(5)
    x = np.column_stack([rng.normal(size=100), np.full(100, 3.0), rng.normal(size=100)])
    space = rescaled_pca_space(x)
    assert np.isfinite(space).all()


def test_pca_is_rotation_invariant_in_distances():
    # Distances in the full PCA space equal distances in the normalized
    # input space (all components retained, no rescale).
    rng = np.random.default_rng(6)
    x = rng.normal(size=(40, 5))
    model = fit_pca(x)
    z = model.normalizer.transform(x)
    scores = model.transform(x)
    d_in = np.linalg.norm(z[0] - z[1])
    d_out = np.linalg.norm(scores[0] - scores[1])
    assert d_in == pytest.approx(d_out)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        (12, 4),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
def test_property_rescaled_space_always_finite(x):
    space = rescaled_pca_space(x)
    assert np.isfinite(space).all()
    assert space.shape[0] == 12
    assert 1 <= space.shape[1] <= 4
