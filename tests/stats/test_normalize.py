"""Tests for column normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import Normalizer, normalize


def test_normalize_zero_mean_unit_std():
    rng = np.random.default_rng(1)
    x = rng.normal(5.0, 3.0, size=(200, 4))
    z = normalize(x)
    assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
    assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)


def test_constant_column_maps_to_zero():
    x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
    z = normalize(x)
    assert np.allclose(z[:, 0], 0.0)


def test_fit_transform_separation():
    rng = np.random.default_rng(2)
    train = rng.normal(size=(50, 3))
    test = rng.normal(size=(20, 3))
    norm = Normalizer.fit(train)
    z = norm.transform(test)
    assert z.shape == (20, 3)
    # transform must use the *training* statistics
    assert not np.allclose(z.mean(axis=0), 0.0, atol=1e-6)


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        normalize(np.arange(10.0))


def test_rejects_zero_rows():
    with pytest.raises(ValueError):
        Normalizer.fit(np.empty((0, 3)))


def test_transform_shape_mismatch():
    norm = Normalizer.fit(np.ones((5, 3)))
    with pytest.raises(ValueError):
        norm.transform(np.ones((5, 4)))


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        (10, 3),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_property_normalized_columns_bounded_moments(x):
    z = normalize(x)
    assert np.isfinite(z).all()
    # Each column is either exactly zero (constant input) or z-scored.
    for j in range(z.shape[1]):
        col = z[:, j]
        assert abs(col.mean()) < 1e-8
        assert col.std() == pytest.approx(1.0, abs=1e-8) or np.allclose(col, 0.0)
