"""Tests for Pearson correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import pearson


def test_perfect_positive():
    x = np.arange(10.0)
    assert pearson(x, 2 * x + 3) == pytest.approx(1.0)


def test_perfect_negative():
    x = np.arange(10.0)
    assert pearson(x, -x) == pytest.approx(-1.0)


def test_constant_vector_returns_zero():
    assert pearson(np.ones(5), np.arange(5.0)) == 0.0


def test_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        pearson(np.ones(4), np.ones(5))


def test_rejects_scalarish_input():
    with pytest.raises(ValueError):
        pearson(np.ones(1), np.ones(1))


def test_known_value():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    y = np.array([1.0, 3.0, 2.0, 4.0])
    assert pearson(x, y) == pytest.approx(0.8)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, 20, elements=st.floats(-1e4, 1e4, allow_nan=False)),
    arrays(np.float64, 20, elements=st.floats(-1e4, 1e4, allow_nan=False)),
)
def test_property_bounded_and_symmetric(x, y):
    r = pearson(x, y)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
    assert pearson(y, x) == pytest.approx(r, abs=1e-12)
