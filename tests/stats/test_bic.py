"""Tests for the k-means BIC score."""

import numpy as np
import pytest

from repro.stats import kmeans_bic


def blob_data(separation):
    rng = np.random.default_rng(11)
    a = rng.normal(size=(50, 2))
    b = rng.normal(size=(50, 2)) + separation
    return np.vstack([a, b])


def two_cluster_fit(points):
    labels = np.array([0] * 50 + [1] * 50)
    centers = np.vstack([points[:50].mean(axis=0), points[50:].mean(axis=0)])
    return labels, centers


def one_cluster_fit(points):
    labels = np.zeros(len(points), dtype=np.int64)
    centers = points.mean(axis=0)[None, :]
    return labels, centers


def test_bic_prefers_two_clusters_when_separated():
    points = blob_data(separation=12.0)
    l2, c2 = two_cluster_fit(points)
    l1, c1 = one_cluster_fit(points)
    assert kmeans_bic(points, l2, c2) > kmeans_bic(points, l1, c1)


def test_bic_prefers_one_cluster_when_merged():
    points = blob_data(separation=0.0)
    l2, c2 = two_cluster_fit(points)
    l1, c1 = one_cluster_fit(points)
    assert kmeans_bic(points, l1, c1) > kmeans_bic(points, l2, c2)


def test_bic_degenerate_when_fewer_points_than_clusters():
    points = np.ones((2, 2))
    labels = np.array([0, 1])
    centers = points.copy()
    extra = np.vstack([centers, [5.0, 5.0]])
    assert kmeans_bic(points, labels, extra) == float("-inf")


def test_bic_finite_for_perfect_fit():
    points = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]])
    labels = np.array([0, 0, 1])
    centers = np.array([[0.0, 0.0], [5.0, 5.0]])
    score = kmeans_bic(points, labels, centers)
    assert np.isfinite(score)


def test_bic_penalizes_parameter_count():
    # Same perfect assignment, but more (empty) clusters -> lower BIC.
    rng = np.random.default_rng(3)
    points = rng.normal(size=(60, 2))
    labels = np.zeros(60, dtype=np.int64)
    center = points.mean(axis=0)
    small = kmeans_bic(points, labels, center[None, :])
    padded = np.vstack([center, [100.0, 100.0], [200.0, 200.0]])
    large = kmeans_bic(points, labels, padded)
    assert small > large


def test_bic_accepts_precomputed_assigned_sq():
    rng = np.random.default_rng(4)
    points = rng.normal(size=(50, 3))
    labels = rng.integers(0, 4, size=50)
    centers = rng.normal(size=(4, 3))
    diffs = points - centers[labels]
    assigned_sq = np.sum(diffs**2, axis=1)
    direct = kmeans_bic(points, labels, centers)
    reused = kmeans_bic(points, labels, centers, assigned_sq=assigned_sq)
    assert reused == pytest.approx(direct, rel=1e-12)
