"""Tests for k-means clustering with BIC restarts."""

import numpy as np
import pytest

from repro.stats import kmeans
from repro.synth import generator


@pytest.fixture
def blobs():
    rng = np.random.default_rng(7)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack(
        [c + 0.3 * rng.normal(size=(40, 2)) for c in centers]
    )
    return points


def test_recovers_well_separated_blobs(blobs):
    c = kmeans(blobs, 3, restarts=5, rng=generator("km", 1))
    assert c.k == 3
    sizes = sorted(c.cluster_sizes().tolist())
    assert sizes == [40, 40, 40]


def test_labels_cover_all_points(blobs):
    c = kmeans(blobs, 3, rng=generator("km", 2))
    assert len(c.labels) == len(blobs)
    assert c.labels.min() >= 0
    assert c.labels.max() < 3


def test_centers_near_true_centers(blobs):
    c = kmeans(blobs, 3, restarts=5, rng=generator("km", 3))
    truth = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    for t in truth:
        nearest = np.min(np.linalg.norm(c.centers - t, axis=1))
        assert nearest < 1.0


def test_k_clipped_to_point_count():
    pts = np.random.default_rng(1).normal(size=(5, 2))
    c = kmeans(pts, 10, rng=generator("km", 4))
    assert c.k == 5


def test_no_empty_clusters(blobs):
    c = kmeans(blobs, 20, rng=generator("km", 5))
    assert (c.cluster_sizes() > 0).all()


def test_inertia_decreases_with_more_clusters(blobs):
    c2 = kmeans(blobs, 2, restarts=3, rng=generator("km", 6))
    c6 = kmeans(blobs, 6, restarts=3, rng=generator("km", 6))
    assert c6.inertia < c2.inertia


def test_bic_prefers_true_k(blobs):
    scores = {}
    for k in (2, 3, 8):
        scores[k] = kmeans(blobs, k, restarts=5, rng=generator("km", 7)).bic
    assert scores[3] > scores[2]
    assert scores[3] > scores[8]


def test_representatives_are_member_rows(blobs):
    c = kmeans(blobs, 3, rng=generator("km", 8))
    reps = c.representatives(blobs)
    for cluster, row in enumerate(reps):
        assert c.labels[row] == cluster


def test_deterministic_given_rng_seed(blobs):
    a = kmeans(blobs, 3, rng=generator("km", 9))
    b = kmeans(blobs, 3, rng=generator("km", 9))
    assert (a.labels == b.labels).all()


def test_rejects_bad_arguments(blobs):
    with pytest.raises(ValueError):
        kmeans(blobs, 0, rng=generator("km", 10))
    with pytest.raises(ValueError):
        kmeans(blobs, 2, restarts=0, rng=generator("km", 11))
    with pytest.raises(ValueError):
        kmeans(np.empty((0, 2)), 2, rng=generator("km", 12))
    with pytest.raises(ValueError):
        kmeans(blobs, 2, max_iter=0, rng=generator("km", 14))


def test_single_cluster():
    pts = np.random.default_rng(2).normal(size=(30, 3))
    c = kmeans(pts, 1, rng=generator("km", 13))
    assert c.k == 1
    assert np.allclose(c.centers[0], pts.mean(axis=0), atol=1e-9)


def test_restart_streams_independent_of_restart_count(blobs):
    # Each restart draws from its own derived stream, so adding restarts
    # only ever widens the search: the best BIC is monotone in restarts,
    # and a superset run can reproduce the subset run's winner exactly.
    few = kmeans(blobs, 5, restarts=1, rng=generator("km", 20))
    many = kmeans(blobs, 5, restarts=6, rng=generator("km", 20))
    assert many.bic >= few.bic


def test_restart_count_does_not_perturb_shared_restarts(blobs):
    # With sequential draws from one generator (the old behavior),
    # restart i's init depended on how many restarts ran before it.
    # Derived streams make restart i identical in both runs, so two runs
    # that both include the winning restart agree bit-for-bit.
    a = kmeans(blobs, 3, restarts=4, rng=generator("km", 21))
    b = kmeans(blobs, 3, restarts=8, rng=generator("km", 21))
    if a.bic == b.bic:
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)


def test_parallel_restarts_match_serial(blobs):
    serial = kmeans(blobs, 4, restarts=6, rng=generator("km", 22))
    threaded = kmeans(
        blobs, 4, restarts=6, rng=generator("km", 22), n_jobs=3, backend="thread"
    )
    assert serial.bic == threaded.bic
    assert np.array_equal(serial.labels, threaded.labels)
    assert np.array_equal(serial.centers, threaded.centers)
    assert serial.n_iter == threaded.n_iter
