"""Tests for distance computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import condensed_distances, distances_to, pairwise_distances


def test_pairwise_known_answer():
    pts = np.array([[0.0, 0.0], [3.0, 4.0]])
    d = pairwise_distances(pts)
    assert d[0, 1] == pytest.approx(5.0)
    assert d[1, 0] == pytest.approx(5.0)
    assert d[0, 0] == 0.0


def test_condensed_length():
    pts = np.random.default_rng(1).normal(size=(6, 3))
    c = condensed_distances(pts)
    assert len(c) == 15  # 6 choose 2


def test_distances_to_shape_and_values():
    pts = np.array([[0.0, 0.0], [1.0, 0.0]])
    centers = np.array([[0.0, 1.0]])
    d = distances_to(pts, centers)
    assert d.shape == (2, 1)
    assert d[0, 0] == pytest.approx(1.0)
    assert d[1, 0] == pytest.approx(np.sqrt(2))


def test_distances_to_dim_mismatch():
    with pytest.raises(ValueError):
        distances_to(np.ones((3, 2)), np.ones((2, 3)))


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        pairwise_distances(np.arange(4.0))


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (7, 3), elements=st.floats(-1e3, 1e3, allow_nan=False))
)
def test_property_metric_axioms(pts):
    d = pairwise_distances(pts)
    # Symmetry, non-negativity, zero diagonal.
    assert np.allclose(d, d.T)
    assert (d >= 0).all()
    assert np.allclose(np.diag(d), 0.0)
    # Triangle inequality on a few triples.
    for i, j, k in [(0, 1, 2), (3, 4, 5), (0, 3, 6)]:
        assert d[i, j] <= d[i, k] + d[k, j] + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (5, 2), elements=st.floats(-1e3, 1e3, allow_nan=False))
)
def test_property_matches_naive_computation(pts):
    d = pairwise_distances(pts)
    for i in range(5):
        for j in range(5):
            naive = np.sqrt(((pts[i] - pts[j]) ** 2).sum())
            assert d[i, j] == pytest.approx(naive, abs=1e-6)
