"""The streaming engine's approximation contract, pinned.

The exact path is the reference; these tests assert the streaming
engine's documented bounds against it on a small-but-real
configuration: BIC-selected non-empty cluster count within +-1,
cluster-composition agreement >= 95%, provenance row-for-row aligned.
On the tested configurations the streaming-Lloyd engine actually
achieves *identical* labels; the looser bounds here are the
contractual floor, not the observed gap.
"""

import numpy as np
import pytest

from repro.analysis import StreamingDriftMonitor
from repro.config import AnalysisConfig
from repro.core import build_dataset
from repro.core.pipeline import run_characterization
from repro.streaming import (
    STREAMING_WARMUP_EPOCHS,
    run_streaming_characterization,
)
from repro.suites import SUITE_INT2000, get_suite


@pytest.fixture(scope="module")
def cfg():
    return AnalysisConfig.tiny().replace(
        intervals_per_benchmark=16,
        n_clusters=6,
        kmeans_restarts=2,
        batch_intervals=7,  # deliberately not a divisor of any block
    )


@pytest.fixture(scope="module")
def benches():
    return get_suite(SUITE_INT2000).benchmarks[:6]


@pytest.fixture(scope="module")
def exact(cfg, benches):
    return run_characterization(build_dataset(benches, cfg), cfg, select_key=False)


@pytest.fixture(scope="module")
def streamed(cfg, benches):
    return run_streaming_characterization(benches, cfg)


def composition_agreement(labels_a, labels_b):
    """Fraction of rows explained by a greedy max-overlap cluster matching."""
    cont = np.zeros((labels_a.max() + 1, labels_b.max() + 1), dtype=np.int64)
    for a, b in zip(labels_a, labels_b):
        cont[a, b] += 1
    matched = 0
    while cont.max() > 0:
        i, j = np.unravel_index(np.argmax(cont), cont.shape)
        matched += cont[i, j]
        cont[i, :] = 0
        cont[:, j] = 0
    return matched / len(labels_a)


def test_cluster_count_within_one(exact, streamed):
    exact_k = len(np.unique(exact.clustering.labels))
    stream_k = len(np.unique(streamed.clustering.labels))
    assert abs(exact_k - stream_k) <= 1


def test_composition_agreement_bound(exact, streamed):
    agreement = composition_agreement(
        exact.clustering.labels, streamed.clustering.labels
    )
    assert agreement >= 0.95


def test_space_statistics_match(exact, streamed):
    assert streamed.n_components == exact.n_components
    assert streamed.explained_variance == pytest.approx(
        exact.explained_variance, rel=1e-9
    )


def test_bic_and_inertia_match(exact, streamed):
    assert streamed.clustering.bic == pytest.approx(exact.clustering.bic, rel=1e-9)
    assert streamed.clustering.inertia == pytest.approx(
        exact.clustering.inertia, rel=1e-9
    )


def test_provenance_aligned_with_dataset(cfg, benches, streamed):
    ds = build_dataset(benches, cfg)
    np.testing.assert_array_equal(streamed.suites, ds.suites)
    np.testing.assert_array_equal(streamed.benchmarks, ds.benchmarks)
    np.testing.assert_array_equal(streamed.interval_indices, ds.interval_indices)
    assert len(streamed) == len(ds)


def test_prominent_selection_matches_exact(exact, streamed):
    np.testing.assert_array_equal(
        streamed.prominent.cluster_ids, exact.prominent.cluster_ids
    )
    np.testing.assert_allclose(
        streamed.prominent.weights, exact.prominent.weights, rtol=1e-12
    )
    np.testing.assert_array_equal(
        streamed.prominent.representative_rows,
        exact.prominent.representative_rows,
    )


def test_default_warmup_is_zero(streamed):
    assert STREAMING_WARMUP_EPOCHS == 0
    assert streamed.warmup_epochs == 0
    assert streamed.batch_intervals == 7


def test_batch_size_does_not_change_labels(cfg, benches, streamed):
    other = run_streaming_characterization(
        benches, cfg.replace(batch_intervals=31)
    )
    np.testing.assert_array_equal(
        other.clustering.labels, streamed.clustering.labels
    )


def test_drift_monitor_sees_every_row(cfg, benches):
    monitor = StreamingDriftMonitor()
    result = run_streaming_characterization(benches, cfg, monitor=monitor)
    assert monitor.n_rows == len(result)
    # All SPECint2000 here, so generation pairs stay one-sided (None),
    # but per-benchmark centroids are live.
    centroid = monitor.centroid("SPECint2000", benches[0].name)
    assert centroid.shape == (result.n_components,)
    assert all(v is None for v in monitor.drift().values())


def test_warmup_epochs_validated(cfg, benches):
    with pytest.raises(ValueError):
        run_streaming_characterization(benches, cfg, warmup_epochs=-1)


def test_warmup_path_runs(cfg, benches):
    result = run_streaming_characterization(benches[:2], cfg, warmup_epochs=1)
    assert result.warmup_epochs == 1
    assert len(np.unique(result.clustering.labels)) >= 1
