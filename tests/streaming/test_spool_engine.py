"""The feature spool's engine-level contract: featurize once, change nothing.

The spool and the prefetch pipeline are execution knobs — every test
here pins *bit-identity* against the recompute-per-pass path, not
approximate agreement, across batch sizes, prefetch depths, corruption,
disk-budget declines and persistent-directory reuse.
"""

import numpy as np
import pytest

import repro.core.dataset as dataset_mod
from repro.analysis import StreamingDriftMonitor
from repro.config import AnalysisConfig
from repro.core.dataset import build_sampling_plan, iter_feature_batches
from repro.io.spool import FeatureSpool
from repro.obs import observe
from repro.streaming import run_streaming_characterization
from repro.streaming.source import RAW_KIND
from repro.suites import SUITE_INT2000, get_suite

from ..io.faults import bit_flip


@pytest.fixture(scope="module")
def cfg():
    return AnalysisConfig.tiny().replace(
        intervals_per_benchmark=16,
        n_clusters=6,
        kmeans_restarts=2,
        batch_intervals=7,  # deliberately not a divisor of any block
    )


@pytest.fixture(scope="module")
def benches():
    return get_suite(SUITE_INT2000).benchmarks[:4]


@pytest.fixture(scope="module")
def baseline(cfg, benches):
    """Recompute-per-pass reference: no spool, no prefetch."""
    return run_streaming_characterization(
        benches, cfg.replace(spool=False, prefetch=0)
    )


def assert_identical(a, b):
    np.testing.assert_array_equal(a.clustering.labels, b.clustering.labels)
    np.testing.assert_array_equal(a.clustering.centers, b.clustering.centers)
    assert a.clustering.bic == b.clustering.bic
    assert a.clustering.inertia == b.clustering.inertia
    assert a.n_components == b.n_components
    assert a.explained_variance == b.explained_variance
    np.testing.assert_array_equal(a.prominent.cluster_ids, b.prominent.cluster_ids)
    np.testing.assert_array_equal(a.prominent.weights, b.prominent.weights)
    np.testing.assert_array_equal(
        a.prominent.representative_rows, b.prominent.representative_rows
    )


@pytest.mark.parametrize("spool", [True, False])
@pytest.mark.parametrize("prefetch", [0, 2])
def test_spool_and_prefetch_are_bit_identical(cfg, benches, baseline, spool, prefetch):
    result = run_streaming_characterization(
        benches, cfg.replace(spool=spool, prefetch=prefetch)
    )
    assert_identical(result, baseline)


@pytest.mark.parametrize("batch_intervals", [1, 13, 64])
def test_bit_identity_holds_at_any_batch_size(cfg, benches, batch_intervals):
    # Spool on vs off at the same batch size (batch size itself is a
    # result knob: it fixes the fold order).
    on = run_streaming_characterization(
        benches, cfg.replace(batch_intervals=batch_intervals, prefetch=2)
    )
    off = run_streaming_characterization(
        benches, cfg.replace(batch_intervals=batch_intervals, spool=False)
    )
    assert_identical(on, off)


def _count_featurize_calls(monkeypatch):
    """Count invocations of the fused MICA meter entry point."""
    calls = []
    real = dataset_mod.characterize_intervals

    def wrapper(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(dataset_mod, "characterize_intervals", wrapper)
    return calls


def test_spool_featurizes_exactly_one_sweep(cfg, benches, monkeypatch):
    # The acceptance criterion: after the first sweep, refinement and
    # scoring invoke no trace generation and no MICA meters — the total
    # meter-call count over the whole run equals one plain sweep's.
    local = cfg.replace(prefetch=0)
    calls = _count_featurize_calls(monkeypatch)
    plan = build_sampling_plan(benches, local)
    for _ in iter_feature_batches(plan, local):
        pass
    one_sweep = len(calls)
    assert one_sweep > 0
    calls.clear()
    result = run_streaming_characterization(benches, local)
    assert len(calls) == one_sweep
    assert result.featurize_sweeps == 1
    assert result.replay_sweeps >= 2
    assert result.spool_bytes > 0


def test_without_spool_every_pass_featurizes(cfg, benches, monkeypatch):
    local = cfg.replace(spool=False, prefetch=0)
    calls = _count_featurize_calls(monkeypatch)
    plan = build_sampling_plan(benches, local)
    for _ in iter_feature_batches(plan, local):
        pass
    one_sweep = len(calls)
    calls.clear()
    result = run_streaming_characterization(benches, local)
    assert result.featurize_sweeps > 1
    assert len(calls) == one_sweep * result.featurize_sweeps
    assert result.replay_sweeps == 0
    assert result.spool_bytes == 0


def test_scoring_and_drift_share_one_sweep(cfg, benches):
    # Satellite pin: the drift monitor rides the scoring sweep; feeding
    # it fully costs zero extra passes (sweeps == 2 + warmup + refine).
    monitor = StreamingDriftMonitor()
    with observe() as ob:
        result = run_streaming_characterization(
            benches, cfg.replace(spool=False), monitor=monitor
        )
    passes = ob.metrics.gauge_value("streaming.refine_passes")
    assert passes >= 1
    assert result.featurize_sweeps == 2 + result.warmup_epochs + passes
    assert monitor.n_rows == len(result)


def test_mid_run_corruption_quarantines_and_recomputes(
    cfg, benches, baseline, tmp_path, monkeypatch
):
    # Flip a bit in the sealed raw payload the first time a replay
    # opens it: verification must catch it, quarantine the pair, and
    # the run must recompute to a bit-identical result.
    spool_dir = tmp_path / "spool"
    real_open = FeatureSpool.open_replay
    flipped = []

    def corrupting(self, kind, n_cols):
        if kind == RAW_KIND and not flipped and self.data_path(kind).exists():
            bit_flip(self.data_path(kind), offset=321)
            flipped.append(True)
        return real_open(self, kind, n_cols)

    monkeypatch.setattr(FeatureSpool, "open_replay", corrupting)
    result = run_streaming_characterization(
        benches, cfg.replace(spool_dir=str(spool_dir), prefetch=0)
    )
    assert flipped, "corruption hook never fired"
    assert list(spool_dir.glob("*.corrupt-*")), "damaged spool was not quarantined"
    assert result.featurize_sweeps == 2  # cold sweep + post-quarantine recompute
    assert_identical(result, baseline)


def test_persistent_spool_dir_skips_featurization(
    cfg, benches, baseline, tmp_path, monkeypatch
):
    spool_dir = tmp_path / "spool"
    local = cfg.replace(spool_dir=str(spool_dir), prefetch=0)
    first = run_streaming_characterization(benches, local)
    assert first.featurize_sweeps == 1
    assert spool_dir.exists()

    calls = _count_featurize_calls(monkeypatch)
    second = run_streaming_characterization(benches, local)
    assert calls == []  # warm directory: zero trace generation, zero meters
    assert second.featurize_sweeps == 0
    assert second.spool_bytes == 0  # nothing new sealed
    assert_identical(second, baseline)
    assert_identical(second, first)


def test_stale_fingerprint_never_served(cfg, benches, tmp_path):
    # A persistent directory reused with a different featurization must
    # re-spool under a new fingerprint, not replay the old rows.
    spool_dir = tmp_path / "spool"
    run_streaming_characterization(
        benches, cfg.replace(spool_dir=str(spool_dir))
    )
    other = cfg.replace(
        spool_dir=str(spool_dir), interval_instructions=cfg.interval_instructions * 2
    )
    result = run_streaming_characterization(benches, other)
    assert result.featurize_sweeps == 1  # not served from the stale spool
    reference = run_streaming_characterization(benches, other.replace(spool=False))
    assert_identical(result, reference)


def test_disk_budget_degrades_to_recompute(cfg, benches, baseline):
    with observe() as ob:
        result = run_streaming_characterization(
            benches, cfg.replace(spool_max_bytes=64, prefetch=0)
        )
    assert result.featurize_sweeps > 1  # declined: every pass recomputes
    assert result.spool_bytes == 0
    assert ob.metrics.counter_value("spool.evictions") >= 1
    assert_identical(result, baseline)


def test_temp_spool_is_cleaned_up(cfg, benches, tmp_path, monkeypatch):
    import tempfile

    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    run_streaming_characterization(benches, cfg)
    assert list(tmp_path.glob("repro-spool-*")) == []


def test_spool_counters(cfg, benches):
    with observe() as ob:
        run_streaming_characterization(benches, cfg.replace(prefetch=2))
    m = ob.metrics
    assert m.counter_value("spool.misses") == 2  # one cold sweep per kind
    assert m.counter_value("spool.hits") >= 2
    assert m.counter_value("spool.bytes") > 0
    assert m.counter_value("spool.evictions") == 0
    assert m.counter_value("prefetch.batches") > 0
    assert m.gauge_value("streaming.featurize_sweeps") == 1
