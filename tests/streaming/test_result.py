"""Round-trip persistence of streaming characterizations."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.io.artifacts import read_artifact
from repro.streaming import (
    load_streaming_result,
    run_streaming_characterization,
    save_streaming_result,
)
from repro.streaming.result import STREAMING_SCHEMA
from repro.suites import get_benchmark


@pytest.fixture(scope="module")
def result():
    cfg = AnalysisConfig.tiny().replace(kmeans_restarts=2, batch_intervals=5)
    benches = [get_benchmark("BMW", "face"), get_benchmark("BioPerf", "grappa")]
    return run_streaming_characterization(benches, cfg)


def test_round_trip(result, tmp_path):
    path = tmp_path / "stream.npz"
    save_streaming_result(result, path)
    loaded = load_streaming_result(path)
    np.testing.assert_array_equal(loaded.suites, result.suites)
    np.testing.assert_array_equal(loaded.benchmarks, result.benchmarks)
    np.testing.assert_array_equal(loaded.interval_indices, result.interval_indices)
    np.testing.assert_array_equal(
        loaded.clustering.labels, result.clustering.labels
    )
    np.testing.assert_array_equal(
        loaded.clustering.centers, result.clustering.centers
    )
    assert loaded.clustering.bic == result.clustering.bic
    assert loaded.clustering.inertia == result.clustering.inertia
    assert loaded.n_components == result.n_components
    assert loaded.explained_variance == result.explained_variance
    assert loaded.batch_intervals == result.batch_intervals
    assert loaded.warmup_epochs == result.warmup_epochs
    assert loaded.featurize_sweeps == result.featurize_sweeps
    assert loaded.replay_sweeps == result.replay_sweeps
    assert loaded.spool_bytes == result.spool_bytes
    assert result.featurize_sweeps == 1  # default spool: one cold sweep
    np.testing.assert_array_equal(
        loaded.prominent.cluster_ids, result.prominent.cluster_ids
    )
    np.testing.assert_array_equal(
        loaded.prominent.representative_rows,
        result.prominent.representative_rows,
    )


def test_loads_pre_spool_artifacts(result, tmp_path):
    # Artifacts written before the pass-accounting fields existed load
    # with the zero defaults.
    from repro.io.artifacts import write_artifact

    path = tmp_path / "old.npz"
    save_streaming_result(result, path)
    arrays, meta = read_artifact(path, schema=STREAMING_SCHEMA)
    for key in ("featurize_sweeps", "replay_sweeps", "spool_bytes"):
        meta.pop(key)
    write_artifact(path, arrays, schema=STREAMING_SCHEMA, meta=meta)
    loaded = load_streaming_result(path)
    assert loaded.featurize_sweeps == 0
    assert loaded.replay_sweeps == 0
    assert loaded.spool_bytes == 0


def test_schema_tagged(result, tmp_path):
    path = tmp_path / "stream.npz"
    save_streaming_result(result, path)
    arrays, meta = read_artifact(path, schema=STREAMING_SCHEMA)
    assert "labels" in arrays and "centers" in arrays
    assert meta["batch_intervals"] == result.batch_intervals
