"""Fault-injection tests for the cache layers.

Corruption of on-disk cache entries (truncation, bit flips, torn
writes), cross-process single-flight builds, lock-holder death, and the
cache-key contract fixes (``select_key`` validation, GA-less legacy
meta).  The injectors live in ``tests/io/faults.py``.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core import load_characterization
from repro.io import (
    cached_characterization,
    cached_dataset,
    characterization_cache_path,
    dataset_cache_path,
    read_artifact,
    write_artifact,
)
from repro.io.cache import feature_block_dir
from repro.obs import observe
from repro.suites import get_suite

from .faults import (
    bit_flip,
    dead_pid,
    env_with_src,
    kill_process,
    spawn_lock_holder,
    spawn_takeover_racers,
    truncate_file,
)

CFG = AnalysisConfig.tiny()


@pytest.fixture(scope="module")
def benches():
    return list(get_suite("BMW").benchmarks)[:2]


class TestCorruptCacheEntries:
    def test_truncated_dataset_entry_quarantined_and_rebuilt(self, tmp_path, benches):
        first = cached_dataset(CFG, tmp_path, benchmarks=benches, tag="t")
        path = dataset_cache_path(tmp_path, CFG, tag="t")
        truncate_file(path)
        with observe(run_id="f") as ob:
            again = cached_dataset(CFG, tmp_path, benchmarks=benches, tag="t")
        assert np.array_equal(first.features, again.features)
        counters = ob.metrics.snapshot()["counters"]
        assert counters["artifact_cache.corrupt"] == 1
        assert counters["artifact_cache.quarantined"] == 1
        assert counters["dataset_cache.misses"] == 1
        assert list(tmp_path.glob(path.name + ".corrupt-*"))
        # The rebuilt entry is valid again.
        read_artifact(path, schema="dataset")

    def test_bit_flipped_characterization_entry_rebuilt(self, tmp_path, benches):
        first = cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="t", select_key=False
        )
        path = characterization_cache_path(tmp_path, CFG, tag="t")
        bit_flip(path)
        again = cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="t", select_key=False
        )
        assert np.array_equal(first.clustering.labels, again.clustering.labels)
        assert list(tmp_path.glob(path.name + ".corrupt-*"))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_rebuild_after_corruption_across_backends(self, tmp_path, benches, backend):
        cfg = CFG.replace(parallel_backend=backend, n_jobs=2)
        first = cached_dataset(cfg, tmp_path, benchmarks=benches, tag=backend)
        path = dataset_cache_path(tmp_path, cfg, tag=backend)
        truncate_file(path, keep=0.3)
        again = cached_dataset(cfg, tmp_path, benchmarks=benches, tag=backend)
        assert np.array_equal(first.features, again.features)


class TestSelectKeyContract:
    def test_ga_less_hit_rebuilds_when_ga_required(self, tmp_path, benches):
        no_ga = cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="k", select_key=False
        )
        assert no_ga.ga_result is None
        with observe(run_id="k") as ob:
            full = cached_characterization(
                CFG, tmp_path, benchmarks=benches, tag="k", select_key=True
            )
        assert full.ga_result is not None
        assert full.key_characteristics
        counters = ob.metrics.snapshot()["counters"]
        # Fires on the pre-lock check and again on the under-lock recheck.
        assert counters["characterization_cache.ga_mismatches"] >= 1
        assert counters["characterization_cache.misses"] == 1

    def test_ga_full_entry_serves_no_ga_requests(self, tmp_path, benches):
        full = cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="k2", select_key=True
        )
        with observe(run_id="k2") as ob:
            hit = cached_characterization(
                CFG, tmp_path, benchmarks=benches, tag="k2", select_key=False
            )
        assert np.array_equal(full.clustering.labels, hit.clustering.labels)
        assert ob.metrics.snapshot()["counters"]["characterization_cache.hits"] == 1


class TestFeatureBlockForwarding:
    def test_use_feature_blocks_false_is_forwarded(self, tmp_path, benches):
        cached_characterization(
            CFG,
            tmp_path,
            benchmarks=benches,
            tag="nofb",
            select_key=False,
            use_feature_blocks=False,
        )
        assert not feature_block_dir(tmp_path).exists()

    def test_use_feature_blocks_default_populates_blocks(self, tmp_path, benches):
        cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="fb", select_key=False
        )
        assert any(feature_block_dir(tmp_path).glob("block_*.npz"))


class TestGaMetaValidation:
    def test_meta_predating_ga_fitness_yields_no_ga_result(self, tmp_path, benches):
        path = characterization_cache_path(tmp_path, CFG, tag="m")
        cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="m", select_key=True
        )
        arrays, meta = read_artifact(path, schema="characterization")
        assert meta["key_characteristics"]
        del meta["ga_fitness"], meta["ga_history"]
        write_artifact(path, arrays, schema="characterization", meta=meta)
        loaded = load_characterization(path)
        assert loaded.ga_result is None
        assert loaded.key_characteristics  # names survive, result does not

    def test_nan_fitness_placeholder_yields_no_ga_result(self, tmp_path, benches):
        path = characterization_cache_path(tmp_path, CFG, tag="m2")
        cached_characterization(
            CFG, tmp_path, benchmarks=benches, tag="m2", select_key=True
        )
        arrays, meta = read_artifact(path, schema="characterization")
        meta["ga_fitness"] = float("nan")
        write_artifact(path, arrays, schema="characterization", meta=meta)
        assert load_characterization(path).ga_result is None


_SINGLE_FLIGHT_DRIVER = """
import sys
from pathlib import Path
import repro.io.cache as cache_mod
from repro.config import AnalysisConfig
from repro.suites import get_suite

cache_dir, log_path = Path(sys.argv[1]), Path(sys.argv[2])
real_build = cache_mod.build_dataset

def counting_build(*args, **kwargs):
    with open(log_path, "a") as fh:
        fh.write("build\\n")
    return real_build(*args, **kwargs)

cache_mod.build_dataset = counting_build
cfg = AnalysisConfig.tiny()
benches = list(get_suite("BMW").benchmarks)[:2]
ds = cache_mod.cached_dataset(cfg, cache_dir, benchmarks=benches, tag="sf")
print(len(ds))
"""


class TestConcurrency:
    @pytest.mark.parametrize("lock_backend", ["auto", "pidfile"])
    def test_two_processes_build_exactly_once(self, tmp_path, lock_backend):
        log_path = tmp_path / "builds.log"
        env = env_with_src(REPRO_ARTIFACT_LOCK=lock_backend)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _SINGLE_FLIGHT_DRIVER, str(tmp_path), str(log_path)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=300) for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        rows = {out.strip() for out, _ in outs}
        assert len(rows) == 1  # both saw the same dataset
        builds = log_path.read_text().splitlines()
        assert builds == ["build"], f"expected exactly one build, got {builds}"

    def test_lock_holder_death_releases_flock(self, tmp_path, benches):
        path = dataset_cache_path(tmp_path, CFG, tag="lh")
        holder = spawn_lock_holder(path, backend="auto")
        kill_process(holder)
        # The kernel released the dead holder's flock: the build proceeds.
        ds = cached_dataset(
            CFG, tmp_path, benchmarks=benches, tag="lh", lock_timeout=10
        )
        assert len(ds) == 2 * CFG.intervals_per_benchmark

    def test_dead_pidfile_holder_taken_over(self, tmp_path, benches, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK", "pidfile")
        path = dataset_cache_path(tmp_path, CFG, tag="lh2")
        holder = spawn_lock_holder(path, backend="pidfile")
        kill_process(holder)
        # The pidfile survives its dead owner; takeover is by pid probe.
        ds = cached_dataset(
            CFG, tmp_path, benchmarks=benches, tag="lh2", lock_timeout=30
        )
        assert len(ds) == 2 * CFG.intervals_per_benchmark

    def test_stale_takeover_race_admits_one_holder_at_a_time(self, tmp_path):
        """Racing waiters on one stale pidfile lock stay mutually exclusive.

        All racers judge the pre-staled lock stale at the same barrier
        release — the schedule where the old unlink + re-create takeover
        let two waiters both proceed.  The replace-based takeover with
        read-back verification must admit exactly one at a time: the
        enter/exit ledger lines have to strictly alternate.
        """
        import json as _json
        import os as _os
        import socket as _socket
        import time as _time

        from repro.io.artifacts import lock_path_for

        target = tmp_path / "raced.npz"
        lock_path = lock_path_for(target)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            _json.dumps(
                {"pid": dead_pid(), "host": _socket.gethostname(), "time": 0}
            )
        )
        old = _time.time() - 3_600
        _os.utime(lock_path, (old, old))
        ledger = tmp_path / "ledger.log"
        go = tmp_path / "GO"
        procs = spawn_takeover_racers(target, ledger, go, n=3)
        go.write_text("go")
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        lines = ledger.read_text().splitlines()
        assert len(lines) == 6, lines
        inside = None
        for line in lines:
            action, name = line.split()
            if action == "enter":
                assert inside is None, f"{name} entered while {inside} held: {lines}"
                inside = name
            else:
                assert inside == name, lines
                inside = None
        assert inside is None
