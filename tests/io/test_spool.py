"""Tests for the feature spool: round trips, budgets, fault injection."""

import numpy as np
import pytest

from repro.io.spool import SPOOL_INDEX_SCHEMA, FeatureSpool
from repro.obs import observe

from .faults import bit_flip, truncate_file


@pytest.fixture
def rows():
    rng = np.random.default_rng(7)
    return rng.standard_normal((23, 5))


def make_spool(tmp_path, **kwargs):
    return FeatureSpool(tmp_path, {"raw": "aaaa1111", "proj": "bbbb2222"}, **kwargs)


def write_kind(spool, kind, rows, batch=7):
    writer = spool.writer(kind, len(rows), rows.shape[1])
    assert writer is not None
    for start in range(0, len(rows), batch):
        writer.append(rows[start : start + batch])
    writer.seal()


def replay_all(spool, kind, n_cols, batch):
    replay = spool.replay(kind, n_cols, batch)
    assert replay is not None
    starts, chunks = [], []
    for start, chunk in replay:
        starts.append(start)
        chunks.append(np.asarray(chunk))
    return starts, np.concatenate(chunks) if chunks else np.empty((0, n_cols))


def test_round_trip_bit_identical(tmp_path, rows):
    spool = make_spool(tmp_path)
    assert not spool.ready("raw")
    write_kind(spool, "raw", rows)
    assert spool.ready("raw")
    starts, got = replay_all(spool, "raw", 5, batch=7)
    assert starts == [0, 7, 14, 21]
    assert got.dtype == np.float64
    assert np.array_equal(got, rows)


def test_replay_rebatches_freely(tmp_path, rows):
    # Replay batching is independent of the batching the sweep wrote with.
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows, batch=7)
    for batch in (1, 4, 23, 100):
        _, got = replay_all(spool, "raw", 5, batch=batch)
        assert np.array_equal(got, rows)


def test_replay_views_are_zero_copy(tmp_path, rows):
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    replay = spool.replay("raw", 5, 7)
    _, chunk = next(replay)
    assert isinstance(chunk, np.memmap) or isinstance(chunk.base, np.memmap)


def test_kinds_are_independent(tmp_path, rows):
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    assert spool.ready("raw")
    assert not spool.ready("proj")
    assert spool.replay("proj", 3, 8) is None


def test_unsealed_writer_leaves_nothing_replayable(tmp_path, rows):
    spool = make_spool(tmp_path)
    writer = spool.writer("raw", len(rows), 5)
    writer.append(rows[:7])
    writer.abandon()
    assert not spool.ready("raw")
    assert spool.replay("raw", 5, 7) is None
    assert list(tmp_path.glob("*.tmp")) == []


def test_seal_short_raises_and_abandons(tmp_path, rows):
    spool = make_spool(tmp_path)
    writer = spool.writer("raw", len(rows), 5)
    writer.append(rows[:7])
    with pytest.raises(ValueError, match="sealed short"):
        writer.seal()
    assert not spool.ready("raw")


def test_append_overflow_raises(tmp_path, rows):
    spool = make_spool(tmp_path)
    writer = spool.writer("raw", 10, 5)
    with pytest.raises(ValueError, match="overflow"):
        writer.append(rows)
    writer.abandon()


def test_append_rejects_wrong_width(tmp_path, rows):
    spool = make_spool(tmp_path)
    writer = spool.writer("raw", len(rows), 5)
    with pytest.raises(ValueError, match="rows"):
        writer.append(rows[:, :3])
    writer.abandon()


def test_budget_declines_upfront(tmp_path, rows):
    # 23 x 5 x 8 = 920 bytes; a 100-byte budget declines before any I/O.
    spool = make_spool(tmp_path, max_bytes=100)
    with observe() as ob:
        assert spool.writer("raw", len(rows), 5) is None
    assert ob.metrics.counter_value("spool.evictions") == 1
    assert list(tmp_path.iterdir()) == []


def test_budget_counts_existing_kinds(tmp_path, rows):
    spool = make_spool(tmp_path, max_bytes=1000)
    write_kind(spool, "raw", rows)  # 920 bytes on disk
    assert spool.writer("proj", 4, 5) is None  # 160 more would exceed 1000
    assert spool.writer("proj", 2, 5) is not None  # 80 more fits


def test_bytes_written_tracks_sealed_payloads(tmp_path, rows):
    spool = make_spool(tmp_path)
    assert spool.bytes_written == 0
    write_kind(spool, "raw", rows)
    assert spool.bytes_written == 23 * 5 * 8
    assert spool.spooled_bytes() == 23 * 5 * 8


def test_truncated_payload_quarantined(tmp_path, rows):
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    truncate_file(spool.data_path("raw"), keep=0.5)
    with observe() as ob:
        assert spool.replay("raw", 5, 7) is None
    assert ob.metrics.counter_value("spool.evictions") == 1
    assert not spool.ready("raw")
    assert list(tmp_path.glob("*.corrupt-*"))


def test_bit_flipped_payload_quarantined(tmp_path, rows):
    # Same size, one flipped bit: only the checksum pass can catch this.
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    bit_flip(spool.data_path("raw"), offset=500)
    assert spool.replay("raw", 5, 7) is None
    assert not spool.ready("raw")
    assert list(tmp_path.glob("*.corrupt-*"))


def test_corrupt_index_quarantined(tmp_path, rows):
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    bit_flip(spool.index_path("raw"))
    assert spool.replay("raw", 5, 7) is None
    assert not spool.ready("raw")


def test_fingerprint_mismatch_quarantined(tmp_path, rows):
    # A stale index claiming a different fingerprint must never replay.
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    imposter = FeatureSpool(tmp_path, {"raw": "aaaa1111"})
    from repro.io.artifacts import read_artifact, write_artifact

    arrays, meta = read_artifact(spool.index_path("raw"), schema=SPOOL_INDEX_SCHEMA)
    meta["fingerprint"] = "deadbeef00000000"
    write_artifact(
        spool.index_path("raw"), arrays, schema=SPOOL_INDEX_SCHEMA, meta=meta
    )
    assert imposter.replay("raw", 5, 7) is None


def test_recovery_after_quarantine(tmp_path, rows):
    # Quarantine frees the name: a fresh sweep re-spools and replays.
    spool = make_spool(tmp_path)
    write_kind(spool, "raw", rows)
    truncate_file(spool.data_path("raw"), keep=0.25)
    assert spool.replay("raw", 5, 7) is None
    write_kind(spool, "raw", rows)
    _, got = replay_all(spool, "raw", 5, batch=9)
    assert np.array_equal(got, rows)


def test_unknown_kind_raises(tmp_path):
    spool = make_spool(tmp_path)
    with pytest.raises(KeyError, match="no fingerprint"):
        spool.data_path("mystery")
