"""Unit tests for the crash-safe artifact store."""

import json
import threading
import time

import numpy as np
import pytest

from repro.io import artifacts as A
from repro.obs import observe

from .faults import bit_flip, crash_writer, dead_pid, sigkill_rc, truncate_file


@pytest.fixture
def arrays():
    return {"a": np.arange(20, dtype=np.int64), "b": np.eye(3)}


class TestWriteRead:
    def test_round_trip(self, tmp_path, arrays):
        path = tmp_path / "x.npz"
        A.write_artifact(path, arrays, schema="t", meta={"k": 1, "s": "v"})
        loaded, meta = A.read_artifact(path, schema="t")
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"], arrays["a"])
        assert np.array_equal(loaded["b"], arrays["b"])
        assert meta == {"k": 1, "s": "v"}

    def test_reserved_header_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            A.write_artifact(
                tmp_path / "x.npz", {A.HEADER_KEY: np.arange(3)}, schema="t"
            )

    def test_no_tmp_residue_after_write(self, tmp_path, arrays):
        A.write_artifact(tmp_path / "x.npz", arrays, schema="t")
        assert [p.name for p in tmp_path.iterdir()] == ["x.npz"]

    def test_schema_mismatch(self, tmp_path, arrays):
        path = tmp_path / "x.npz"
        A.write_artifact(path, arrays, schema="t")
        with pytest.raises(A.SchemaMismatch):
            A.read_artifact(path, schema="other")

    def test_version_mismatch(self, tmp_path, arrays):
        path = tmp_path / "x.npz"
        A.write_artifact(path, arrays, schema="t", version=A.ARTIFACT_VERSION + 1)
        with pytest.raises(A.SchemaMismatch):
            A.read_artifact(path, schema="t")

    def test_truncation_detected(self, tmp_path, arrays):
        path = tmp_path / "x.npz"
        A.write_artifact(path, arrays, schema="t")
        truncate_file(path)
        with pytest.raises(A.CorruptArtifact):
            A.read_artifact(path, schema="t")

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "x.npz"
        # Incompressible payload so a mid-file flip lands in array data.
        rng = np.random.default_rng(0)
        A.write_artifact(path, {"a": rng.random(4096)}, schema="t")
        bit_flip(path)
        with pytest.raises(A.CorruptArtifact):
            A.read_artifact(path, schema="t")

    def test_not_an_npz_detected(self, tmp_path):
        path = tmp_path / "x.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(A.CorruptArtifact):
            A.read_artifact(path, schema="t")

    def test_array_set_mismatch_detected(self, tmp_path, arrays):
        path = tmp_path / "x.npz"
        A.write_artifact(path, arrays, schema="t")
        loaded, _ = A.read_artifact(path, schema="t")
        header = json.loads(
            str(np.load(path, allow_pickle=False)[A.HEADER_KEY])
        )
        # Re-save with an extra array the header does not declare.
        np.savez(
            path,
            **loaded,
            extra=np.arange(2),
            **{A.HEADER_KEY: np.array(json.dumps(header))},
        )
        with pytest.raises(A.CorruptArtifact):
            A.read_artifact(path, schema="t")


class TestLegacy:
    def test_headerless_npz_loads_as_legacy(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez(path, a=np.arange(4), meta=np.array(json.dumps({"n": 7})))
        arrays, meta = A.read_artifact(path, schema="t")
        assert np.array_equal(arrays["a"], np.arange(4))
        assert meta == {"n": 7}

    def test_headerless_rejected_when_legacy_disallowed(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez(path, a=np.arange(4))
        with pytest.raises(A.SchemaMismatch):
            A.read_artifact(path, schema="t", allow_legacy=False)


class TestQuarantine:
    def test_quarantine_moves_file(self, tmp_path):
        path = tmp_path / "x.npz"
        path.write_bytes(b"junk")
        dest = A.quarantine(path)
        assert dest is not None and dest.exists() and not path.exists()
        assert dest.name.startswith("x.npz.corrupt-")

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        assert A.quarantine(tmp_path / "gone.npz") is None

    def test_load_or_quarantine_counts_and_misses(self, tmp_path):
        path = tmp_path / "x.npz"
        path.write_bytes(b"junk")
        with observe(run_id="q") as ob:
            out = A.load_or_quarantine(
                path, lambda p: A.read_artifact(p, schema="t")
            )
        assert out is None
        assert not path.exists()
        assert list(tmp_path.glob("x.npz.corrupt-*"))
        counters = ob.metrics.snapshot()["counters"]
        assert counters["artifact_cache.corrupt"] == 1
        assert counters["artifact_cache.quarantined"] == 1

    def test_load_or_quarantine_passes_through_good_artifact(self, tmp_path):
        path = tmp_path / "x.npz"
        A.write_artifact(path, {"a": np.arange(3)}, schema="t")
        out = A.load_or_quarantine(path, lambda p: A.read_artifact(p, schema="t"))
        assert out is not None
        arrays, _ = out
        assert np.array_equal(arrays["a"], np.arange(3))

    def test_missing_file_is_plain_miss(self, tmp_path):
        assert (
            A.load_or_quarantine(
                tmp_path / "absent.npz",
                lambda p: A.read_artifact(p, schema="t"),
            )
            is None
        )


class TestAtomicity:
    def test_kill_before_replace_leaves_no_artifact(self, tmp_path):
        path = tmp_path / "x.npz"
        assert crash_writer(path, when="before_replace") == sigkill_rc()
        assert not path.exists()

    def test_kill_after_replace_leaves_valid_artifact(self, tmp_path):
        path = tmp_path / "x.npz"
        assert crash_writer(path, when="after_replace") == sigkill_rc()
        arrays, _ = A.read_artifact(path, schema="fault-test")
        assert np.array_equal(arrays["payload"], np.arange(10_000))

    def test_kill_mid_write_never_clobbers_previous_version(self, tmp_path):
        path = tmp_path / "x.npz"
        A.write_artifact(path, {"v": np.array([1])}, schema="fault-test")
        assert crash_writer(path, when="before_replace") == sigkill_rc()
        arrays, _ = A.read_artifact(path, schema="fault-test")
        assert np.array_equal(arrays["v"], np.array([1]))


class TestLocking:
    def test_lock_path_is_in_locks_subdir(self, tmp_path):
        lp = A.lock_path_for(tmp_path / "x.npz")
        assert lp == tmp_path / ".locks" / "x.npz.lock"

    @pytest.mark.parametrize("backend", ["auto", "pidfile"])
    def test_mutual_exclusion_across_threads(self, tmp_path, monkeypatch, backend):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK", backend)
        target = tmp_path / "x.npz"
        active = []
        overlaps = []

        def worker():
            with A.artifact_lock(target, timeout=30, poll=0.005):
                active.append(1)
                if len(active) > 1:
                    overlaps.append(True)
                time.sleep(0.02)
                active.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlaps

    def test_pidfile_timeout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK", "pidfile")
        target = tmp_path / "x.npz"
        lock_path = A.lock_path_for(target)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        # A live-owner lock (our own pid) that never goes away.
        lock_path.write_text(
            json.dumps({"pid": __import__("os").getpid(),
                        "host": __import__("socket").gethostname(),
                        "time": time.time()})
        )
        with pytest.raises(A.LockTimeout):
            with A.artifact_lock(target, timeout=0.3, poll=0.02):
                pass

    def test_pidfile_stale_dead_owner_taken_over(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK", "pidfile")
        target = tmp_path / "x.npz"
        lock_path = A.lock_path_for(target)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            json.dumps({"pid": dead_pid(),
                        "host": __import__("socket").gethostname(),
                        "time": 0})
        )
        with observe(run_id="stale") as ob:
            with A.artifact_lock(target, timeout=5):
                pass
        assert ob.metrics.snapshot()["counters"]["artifact_cache.stale_locks"] >= 1

    def test_pidfile_unparseable_old_lock_taken_over(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LOCK", "pidfile")
        target = tmp_path / "x.npz"
        lock_path = A.lock_path_for(target)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text("garbage")
        old = time.time() - 10_000
        __import__("os").utime(lock_path, (old, old))
        with A.artifact_lock(target, timeout=5, stale_after=60):
            pass

    def _stale_lock(self, tmp_path):
        import os

        lock_path = A.lock_path_for(tmp_path / "x.npz")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            json.dumps({"pid": dead_pid(),
                        "host": __import__("socket").gethostname(),
                        "time": 0})
        )
        os.utime(lock_path, (0, 0))
        return lock_path

    def test_pidfile_takeover_replaces_never_unlinks(self, tmp_path, monkeypatch):
        """A stealer must swap the stale stamp atomically, not unlink it.

        The old unlink + re-create takeover had a window with no lock
        file at all, during which a second stealer could also "win" —
        and its unlink could delete the first winner's fresh lock.
        """
        import os

        lock_path = self._stale_lock(tmp_path)
        unlinked = []
        real_unlink = os.unlink

        def spying_unlink(path, *args, **kwargs):
            unlinked.append(str(path))
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr(A.os, "unlink", spying_unlink)
        lock = A._PidFileLock(lock_path, timeout=5, poll=0.01, stale_after=60)
        lock.acquire()
        assert str(lock_path) not in unlinked  # takeover was a replace
        assert json.loads(lock_path.read_text()) == lock._stamp
        lock.release()  # normal release does unlink our own file
        assert str(lock_path) in unlinked

    def test_pidfile_second_stealer_aborts_on_changed_content(self, tmp_path):
        """Once one waiter takes a stale lock over, a rival must back off.

        The rival re-reads immediately before publishing and finds the
        winner's fresh stamp instead of the stale one it judged, so its
        takeover aborts instead of clobbering the winner.
        """
        lock_path = self._stale_lock(tmp_path)
        winner = A._PidFileLock(lock_path, timeout=5, poll=0.01, stale_after=60)
        rival = A._PidFileLock(lock_path, timeout=5, poll=0.01, stale_after=60)
        winner.acquire()
        rival._stamp = {"pid": 1, "host": "h", "time": 0, "nonce": "rival"}
        assert rival._steal_if_stale() is False
        assert json.loads(lock_path.read_text()) == winner._stamp
        winner.release()
        assert not lock_path.exists()

    def test_pidfile_readback_detects_lost_takeover(self, tmp_path, monkeypatch):
        """A clobbered acquisition is detected, counted, and retried.

        Simulate a rival replacing the lock inside the settle window:
        the read-back sees a foreign stamp, the acquirer backs off
        (bumping ``lock_steal_races``) and, with the rival alive and
        fresh, times out instead of proceeding as a second holder.
        """
        lock_path = self._stale_lock(tmp_path)
        rival_stamp = {"pid": __import__("os").getpid(),
                       "host": __import__("socket").gethostname(),
                       "time": time.time(), "nonce": "rival"}
        real_sleep = time.sleep

        def clobbering_sleep(seconds):
            # The settle sleep: the rival's replace lands right here.
            if json.loads(lock_path.read_text()).get("nonce") != "rival":
                lock_path.write_text(json.dumps(rival_stamp))
            real_sleep(min(seconds, 0.001))

        monkeypatch.setattr(A.time, "sleep", clobbering_sleep)
        lock = A._PidFileLock(lock_path, timeout=0.3, poll=0.01, stale_after=60)
        with observe(run_id="race") as ob:
            with pytest.raises(A.LockTimeout):
                lock.acquire()
        counters = ob.metrics.snapshot()["counters"]
        assert counters["artifact_cache.lock_steal_races"] >= 1
        assert not lock._held
        # The rival's lock survived the loser's exit untouched.
        assert json.loads(lock_path.read_text()) == rival_stamp

    def test_pidfile_release_leaves_foreign_lock_alone(self, tmp_path):
        """A holder whose lock was taken over must not unlink the new owner's."""
        lock_path = A.lock_path_for(tmp_path / "x.npz")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock = A._PidFileLock(lock_path, timeout=5, poll=0.01, stale_after=60)
        lock.acquire()
        foreign = {"pid": 1, "host": "elsewhere", "time": time.time(), "nonce": "f"}
        lock_path.write_text(json.dumps(foreign))  # taken over while held
        lock.release()
        assert json.loads(lock_path.read_text()) == foreign


class TestStageCheckpoint:
    def test_save_then_load(self, tmp_path):
        cp = A.StageCheckpoint(tmp_path, "key1")
        cp.save("analysis", {"x": np.arange(5)}, meta={"n": 3})
        loaded = cp.load("analysis", require_arrays=("x",), require_meta=("n",))
        assert loaded is not None
        arrays, meta = loaded
        assert np.array_equal(arrays["x"], np.arange(5))
        assert meta["n"] == 3

    def test_different_run_key_misses(self, tmp_path):
        A.StageCheckpoint(tmp_path, "key1").save("analysis", {"x": np.arange(5)})
        assert A.StageCheckpoint(tmp_path, "key2").load("analysis") is None

    def test_resume_false_never_loads_but_still_saves(self, tmp_path):
        cp = A.StageCheckpoint(tmp_path, "key1", resume=False)
        cp.save("analysis", {"x": np.arange(5)})
        assert cp.load("analysis") is None
        assert A.StageCheckpoint(tmp_path, "key1").load("analysis") is not None

    def test_missing_required_key_quarantines(self, tmp_path):
        cp = A.StageCheckpoint(tmp_path, "key1")
        cp.save("analysis", {"x": np.arange(5)}, meta={})
        assert cp.load("analysis", require_meta=("bic",)) is None
        assert not cp.path("analysis").exists()
        assert list(tmp_path.glob("stage_analysis_key1.npz.corrupt-*"))

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        cp = A.StageCheckpoint(tmp_path, "key1")
        cp.save("ga", {"mask": np.ones(4, dtype=bool)})
        truncate_file(cp.path("ga"))
        with observe(run_id="cc") as ob:
            assert cp.load("ga") is None
        assert ob.metrics.snapshot()["counters"]["artifact_cache.corrupt"] == 1

    def test_wrong_stage_schema_rejected(self, tmp_path):
        cp = A.StageCheckpoint(tmp_path, "key1")
        cp.save("analysis", {"x": np.arange(5)})
        # Rename the analysis checkpoint over the ga slot: schema differs.
        cp.path("analysis").rename(cp.path("ga"))
        assert cp.load("ga") is None
