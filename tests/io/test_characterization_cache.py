"""Tests for full-characterization caching."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.io import cached_characterization, characterization_cache_path
from repro.suites import get_suite


@pytest.fixture(scope="module")
def cfg():
    return AnalysisConfig.tiny()


@pytest.fixture(scope="module")
def benches():
    return list(get_suite("MediaBenchII").benchmarks)[:3]


def test_miss_builds_both_cache_layers(cfg, benches, tmp_path):
    result = cached_characterization(
        cfg, tmp_path, benchmarks=benches, tag="c1", select_key=False
    )
    assert characterization_cache_path(tmp_path, cfg, tag="c1").exists()
    # The dataset layer is cached too, so re-clustering with different
    # analysis params would skip featurization.
    assert any(p.name.startswith("dataset_c1") for p in tmp_path.iterdir())
    assert len(result.dataset) == 3 * cfg.intervals_per_benchmark


def test_hit_returns_identical_clustering(cfg, benches, tmp_path):
    a = cached_characterization(
        cfg, tmp_path, benchmarks=benches, tag="c2", select_key=False
    )
    b = cached_characterization(
        cfg, tmp_path, benchmarks=benches, tag="c2", select_key=False
    )
    assert np.array_equal(a.clustering.labels, b.clustering.labels)
    assert np.allclose(a.space, b.space)


def test_full_key_differs_from_cache_key(cfg):
    # Changing an analysis-only parameter changes full_key (so the
    # characterization cache misses) but not cache_key (so the dataset
    # cache hits).
    other = cfg.replace(n_clusters=cfg.n_clusters + 1)
    assert cfg.full_key() != other.full_key()
    assert cfg.cache_key() == other.cache_key()


def test_analysis_param_change_reuses_dataset(cfg, benches, tmp_path):
    cached_characterization(
        cfg, tmp_path, benchmarks=benches, tag="c3", select_key=False
    )
    datasets_before = sorted(
        p.name for p in tmp_path.iterdir() if p.name.startswith("dataset_c3")
    )
    other = cfg.replace(n_clusters=cfg.n_clusters + 1)
    cached_characterization(
        other, tmp_path, benchmarks=benches, tag="c3", select_key=False
    )
    datasets_after = sorted(
        p.name for p in tmp_path.iterdir() if p.name.startswith("dataset_c3")
    )
    assert datasets_before == datasets_after  # featurized exactly once
    characterizations = [
        p.name for p in tmp_path.iterdir() if p.name.startswith("characterization_c3")
    ]
    assert len(characterizations) == 2  # one per analysis config
