"""Feature-block cache: persistence, keying, and zero re-featurization."""

import numpy as np
import pytest

import repro.core.dataset as dataset_mod
from repro.config import AnalysisConfig
from repro.core import build_dataset
from repro.io import FeatureBlockCache, feature_block_dir
from repro.mica import N_FEATURES
from repro.suites import all_benchmarks

CFG = AnalysisConfig.tiny()


@pytest.fixture
def cache(tmp_path):
    return FeatureBlockCache(tmp_path / "blocks")


def _vec(seed):
    return np.random.default_rng(seed).random(N_FEATURES)


class TestFeatureBlockCache:
    def test_miss_returns_empty(self, cache):
        assert cache.load("Suite/bench", CFG) == {}

    def test_store_load_roundtrip(self, cache):
        entries = {0: _vec(0), 7: _vec(7), 3: _vec(3)}
        cache.store("Suite/bench", CFG, entries)
        loaded = cache.load("Suite/bench", CFG)
        assert sorted(loaded) == [0, 3, 7]
        for idx, vec in entries.items():
            assert np.array_equal(loaded[idx], vec)

    def test_store_merges_grow_only(self, cache):
        cache.store("Suite/bench", CFG, {0: _vec(0)})
        cache.store("Suite/bench", CFG, {2: _vec(2), 0: _vec(99)})
        loaded = cache.load("Suite/bench", CFG)
        assert sorted(loaded) == [0, 2]
        # Latest store wins for an overlapping index.
        assert np.array_equal(loaded[0], _vec(99))

    def test_blocks_keyed_by_benchmark_and_featurization(self, cache):
        cache.store("A/x", CFG, {0: _vec(1)})
        assert cache.load("B/x", CFG) == {}
        bigger = CFG.replace(interval_instructions=CFG.interval_instructions * 2)
        assert cache.load("A/x", bigger) == {}

    def test_analysis_side_changes_share_a_key(self):
        # Seed, interval count, and clustering knobs do not affect a
        # single interval's vector, so they must not split the blocks.
        base = CFG.featurization_key()
        assert CFG.replace(seed=CFG.seed + 1).featurization_key() == base
        assert (
            CFG.replace(
                intervals_per_benchmark=CFG.intervals_per_benchmark + 3
            ).featurization_key()
            == base
        )
        assert (
            CFG.replace(interval_instructions=CFG.interval_instructions * 2)
            .featurization_key()
            != base
        )

    def test_corrupt_block_treated_as_miss(self, cache):
        cache.store("Suite/bench", CFG, {0: _vec(0)})
        path = cache.path("Suite/bench", CFG)
        path.write_bytes(b"not an npz")
        assert cache.load("Suite/bench", CFG) == {}
        # And the next store heals it.
        cache.store("Suite/bench", CFG, {1: _vec(1)})
        assert sorted(cache.load("Suite/bench", CFG)) == [1]

    def test_feature_block_dir_helper(self, tmp_path):
        assert feature_block_dir(tmp_path) == tmp_path / "feature_blocks"


@pytest.fixture
def counting(monkeypatch):
    """Patch characterize_intervals in the dataset module with a counter.

    The builder featurizes in batches; one entry is recorded per
    interval so ``len(counting)`` is the number of intervals
    featurized, regardless of how they were batched.
    """
    calls = []
    real = dataset_mod.characterize_intervals

    def counted(traces, config):
        calls.extend(len(trace) for trace in traces)
        return real(traces, config)

    monkeypatch.setattr(dataset_mod, "characterize_intervals", counted)
    return calls


class TestBuildDatasetWithCache:
    BENCHES = 3

    def _benches(self):
        return all_benchmarks()[: self.BENCHES]

    def test_warm_rerun_refeaturizes_nothing(self, cache, counting):
        benches = self._benches()
        cold = build_dataset(benches, CFG, feature_cache=cache)
        assert counting, "cold build must characterize intervals"
        n_cold = len(counting)
        counting.clear()

        warm = build_dataset(benches, CFG, feature_cache=cache)
        assert counting == [], f"warm build re-featurized {len(counting)} intervals"
        assert np.array_equal(cold.features, warm.features)
        assert n_cold > 0

    def test_analysis_side_config_change_reuses_all_vectors(self, cache, counting):
        # Clustering/PCA/GA knobs touch neither the sampling nor a
        # single interval's vector, so a rerun after changing them must
        # perform zero re-featurization.
        benches = self._benches()
        build_dataset(benches, CFG, feature_cache=cache)
        counting.clear()

        analysis_tweaked = CFG.replace(
            n_clusters=CFG.n_clusters + 4,
            pca_min_std=2.0,
            ga_generations=CFG.ga_generations + 2,
        )
        build_dataset(benches, analysis_tweaked, feature_cache=cache)
        assert counting == []

    def test_reseeded_run_reuses_overlapping_intervals(self, cache, counting):
        # A new seed draws different intervals, but any overlap with a
        # previous run is served from the blocks (featurization_key
        # excludes the seed), so the rerun computes strictly fewer
        # intervals than a cold build would.
        benches = self._benches()
        build_dataset(benches, CFG, feature_cache=cache)
        counting.clear()

        reseeded = CFG.replace(seed=CFG.seed + 1)
        build_dataset(benches, reseeded, feature_cache=cache)
        rerun_calls = list(counting)
        counting.clear()

        cold = build_dataset(benches, reseeded, feature_cache=None)
        assert len(rerun_calls) < len(counting)
        assert len(cold) > 0

    def test_partial_reuse_computes_only_new_intervals(self, cache, counting):
        benches = self._benches()
        # Prime each block with exactly one interval the build will pick.
        total_unique = 0
        for bench in benches:
            picks = dataset_mod.sample_interval_indices(
                bench, CFG.intervals_per_benchmark, seed=CFG.seed
            )
            unique = np.unique(picks)
            total_unique += len(unique)
            idx = int(unique[0])
            trace = bench.program.interval_trace(idx, CFG.interval_instructions)
            cache.store(
                bench.key, CFG, {idx: dataset_mod.characterize_intervals([trace], CFG)[0]}
            )
        counting.clear()

        build_dataset(benches, CFG, feature_cache=cache)
        assert len(counting) == total_unique - len(benches)

    def test_cache_matches_uncached_build(self, cache):
        benches = self._benches()
        plain = build_dataset(benches, CFG)
        cached = build_dataset(benches, CFG, feature_cache=cache)
        assert np.array_equal(plain.features, cached.features)
        assert np.array_equal(plain.interval_indices, cached.interval_indices)
