"""Fault injectors for the crash-safety test suite.

Shared by ``tests/io/test_faults.py`` and ``tests/core/test_resume.py``:
byte-level corruption of on-disk artifacts (truncation, bit flips, torn
writes), subprocess writers SIGKILLed at chosen points inside the
atomic-write protocol, and lock holders that die while holding an
advisory lock.  Everything is deterministic — no timing-based kills.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path
from typing import Optional

SRC = Path(__file__).resolve().parents[2] / "src"


def env_with_src(**extra: str) -> dict:
    """A subprocess environment that can ``import repro``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def truncate_file(path: Path, keep: float = 0.5) -> None:
    """Truncate a file to ``keep`` of its size — a partial/torn write."""
    data = Path(path).read_bytes()
    Path(path).write_bytes(data[: max(1, int(len(data) * keep))])


def bit_flip(path: Path, offset: Optional[int] = None) -> None:
    """Flip one byte (default: the middle of the file) — silent bit rot."""
    raw = bytearray(Path(path).read_bytes())
    i = len(raw) // 2 if offset is None else offset
    raw[i] ^= 0xFF
    Path(path).write_bytes(bytes(raw))


_WRITER_CODE = """
import os, signal, sys
import numpy as np
from repro.io import artifacts

when = sys.argv[2]
real_replace = os.replace

def killing_replace(src, dst):
    if when == "before_replace":
        os.kill(os.getpid(), signal.SIGKILL)
    real_replace(src, dst)
    if when == "after_replace":
        os.kill(os.getpid(), signal.SIGKILL)

os.replace = killing_replace
artifacts.write_artifact(
    sys.argv[1], {"payload": np.arange(10_000)}, schema="fault-test"
)
"""


def crash_writer(path: Path, when: str = "before_replace") -> int:
    """Run ``write_artifact`` in a subprocess SIGKILLed at ``when``.

    ``before_replace`` dies with the payload fully written to the temp
    file but not yet published; ``after_replace`` dies immediately after
    publication.  Returns the subprocess's return code (-SIGKILL).
    """
    proc = subprocess.run(
        [sys.executable, "-c", _WRITER_CODE, str(path), when],
        env=env_with_src(),
        capture_output=True,
    )
    return proc.returncode


_HOLDER_CODE = """
import sys, time
from repro.io.artifacts import artifact_lock

with artifact_lock(sys.argv[1], timeout=60):
    print("HELD", flush=True)
    time.sleep(600)
"""


def spawn_lock_holder(target: Path, backend: str = "auto") -> subprocess.Popen:
    """Start a subprocess holding ``artifact_lock(target)``.

    Blocks until the child confirms acquisition.  Kill it with
    :func:`kill_process` to simulate lock-holder death.
    """
    proc = subprocess.Popen(
        [sys.executable, "-c", _HOLDER_CODE, str(target)],
        env=env_with_src(REPRO_ARTIFACT_LOCK=backend),
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    if line.strip() != "HELD":
        proc.kill()
        raise RuntimeError(f"lock holder failed to start: {line!r}")
    return proc


_TAKEOVER_RACER_CODE = """
import os, sys, time
from repro.io.artifacts import artifact_lock

target, ledger, go, name = sys.argv[1:5]
print("READY", flush=True)
while not os.path.exists(go):
    time.sleep(0.001)
with artifact_lock(target, timeout=60, poll=0.002, stale_after=0.1):
    with open(ledger, "a") as fh:
        fh.write(f"enter {name}\\n")
        fh.flush()
        os.fsync(fh.fileno())
    time.sleep(0.05)
    with open(ledger, "a") as fh:
        fh.write(f"exit {name}\\n")
        fh.flush()
        os.fsync(fh.fileno())
print("DONE", flush=True)
"""


def spawn_takeover_racers(
    target: Path, ledger: Path, go: Path, n: int = 2
) -> "list[subprocess.Popen]":
    """Start ``n`` pidfile-backend waiters racing to take over one lock.

    Each process blocks until the ``go`` file appears (the start
    barrier), then tries ``artifact_lock(target)`` with a short
    ``stale_after`` — point them at a pre-staled lock file and they all
    judge it stale together, which is exactly the schedule where the
    old unlink-based takeover let several "winners" through.  Inside
    the lock each appends ``enter <name>`` / ``exit <name>`` lines to
    ``ledger``; mutual exclusion holds iff the lines strictly
    alternate.
    """
    procs = []
    for i in range(n):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _TAKEOVER_RACER_CODE,
                str(target),
                str(ledger),
                str(go),
                f"r{i}",
            ],
            env=env_with_src(REPRO_ARTIFACT_LOCK="pidfile"),
            stdout=subprocess.PIPE,
            text=True,
        )
        line = proc.stdout.readline()
        if line.strip() != "READY":
            for p in procs + [proc]:
                p.kill()
            raise RuntimeError(f"takeover racer failed to start: {line!r}")
        procs.append(proc)
    return procs


def kill_process(proc: subprocess.Popen) -> None:
    """SIGKILL a subprocess and reap it."""
    proc.kill()
    proc.wait()
    if proc.stdout is not None:
        proc.stdout.close()


def dead_pid() -> int:
    """A pid guaranteed not to be alive (a reaped child's)."""
    child = subprocess.run([sys.executable, "-c", "import os; print(os.getpid())"],
                           capture_output=True, text=True)
    return int(child.stdout.strip())


def sigkill_rc() -> int:
    """The return code a SIGKILLed subprocess reports."""
    return -signal.SIGKILL
