"""Tests for dataset caching."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.io import cached_dataset, dataset_cache_path
from repro.suites import get_suite


@pytest.fixture(scope="module")
def cfg():
    return AnalysisConfig.tiny()


@pytest.fixture(scope="module")
def benches():
    return list(get_suite("BMW").benchmarks)[:2]


def test_cache_miss_builds_and_writes(cfg, benches, tmp_path):
    ds = cached_dataset(cfg, tmp_path, benchmarks=benches, tag="t1")
    assert dataset_cache_path(tmp_path, cfg, tag="t1").exists()
    assert len(ds) == 2 * cfg.intervals_per_benchmark


def test_cache_hit_loads_identical(cfg, benches, tmp_path):
    a = cached_dataset(cfg, tmp_path, benchmarks=benches, tag="t2")
    b = cached_dataset(cfg, tmp_path, benchmarks=benches, tag="t2")
    assert np.array_equal(a.features, b.features)


def test_cache_key_varies_with_featurization_params(cfg):
    other = cfg.replace(interval_instructions=cfg.interval_instructions * 2)
    assert cfg.cache_key() != other.cache_key()


def test_cache_key_ignores_analysis_params(cfg):
    other = cfg.replace(n_clusters=cfg.n_clusters + 5)
    assert cfg.cache_key() == other.cache_key()


def test_tags_separate_files(cfg, tmp_path):
    p1 = dataset_cache_path(tmp_path, cfg, tag="a")
    p2 = dataset_cache_path(tmp_path, cfg, tag="b")
    assert p1 != p2
