"""Tests for text-table formatting."""

import pytest

from repro.io import format_table


def test_basic_layout():
    out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}


def test_numeric_columns_right_aligned():
    out = format_table(["n", "v"], [["a", 5], ["b", 123]])
    lines = out.splitlines()
    assert lines[2].endswith("  5")
    assert lines[3].endswith("123")


def test_text_columns_left_aligned():
    out = format_table(["n"], [["a"], ["long"]])
    lines = out.splitlines()
    assert lines[2] == "a   "


def test_percent_strings_count_as_numeric():
    out = format_table(["p"], [["5%"], ["100%"]])
    assert out.splitlines()[2].endswith("  5%")


def test_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_empty_rows_ok():
    out = format_table(["a", "b"], [])
    assert len(out.splitlines()) == 2


def test_explicit_alignment_respected():
    out = format_table(["a"], [["1"], ["22"]], align_right=[False])
    assert out.splitlines()[2] == "1 "
