"""End-to-end tests over real HTTP: server, client, concurrent dedup."""

import http.client
import threading

import pytest

from repro.config import AnalysisConfig
from repro.service import (
    JobQueue,
    ServiceClient,
    ServiceError,
    Worker,
    make_server,
)

CFG = AnalysisConfig.tiny()


@pytest.fixture
def live(tmp_path):
    """A served API on an ephemeral port; yields (client, root)."""
    root = tmp_path / "svc"
    server = make_server(root, port=0, default_preset="tiny")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), root
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestTransport:
    def test_health_over_the_wire(self, live):
        client, _ = live
        assert client.health()["ok"] is True

    def test_http_error_carries_status_and_body(self, live):
        client, _ = live
        with pytest.raises(ServiceError) as err:
            client.job("does-not-exist")
        assert err.value.status == 404
        assert "does-not-exist" in str(err.value)

    def test_post_without_content_length_is_411(self, live):
        client, _ = live
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/jobs", skip_accept_encoding=True)
            conn.endheaders()  # no Content-Length, no body
            response = conn.getresponse()
            assert response.status == 411
            response.read()
        finally:
            conn.close()

    def test_oversized_declared_body_is_413_before_upload(self, live):
        client, _ = live
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Length", str(50_000_000))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            response.read()
        finally:
            conn.close()

    def test_malformed_json_over_the_wire_is_400(self, live):
        client, _ = live
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            body = b"}{"
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Length", str(len(body)))
            conn.endheaders()
            conn.send(body)
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()


class TestEndToEnd:
    def test_submit_work_fetch(self, live):
        import hashlib

        client, root = live
        submitted = client.submit(suites=["BMW"])
        job_id = submitted["job"]["job_id"]
        Worker(root, "w1").run(once=True)
        done = client.wait(job_id, timeout=60)
        assert done["state"] == "done"
        artifact = client.artifact(job_id)
        assert hashlib.sha256(artifact).hexdigest() == done["result"]["sha256"]
        progress = client.progress(job_id)
        assert progress["live"]["ok"] is True
        assert client.events(job_id).startswith(b"{")
        assert client.report(job_id)["command"] == "service.characterize"
        assert [j["job_id"] for j in client.jobs()] == [job_id]

    def test_concurrent_duplicate_clients_share_one_build(self, live):
        """Ten racing clients, one job, one build — the dedup contract.

        Every submission references the same suites + config, so all of
        them must land on a single queue entry; the build ledger (the
        counting hook) then proves the pipeline ran exactly once, and
        every client fetches byte-identical artifact bytes.
        """
        client, root = live
        results = [None] * 10
        errors = []

        def submit(i):
            try:
                results[i] = client.submit(suites=["BMW"], priority=i % 3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        job_ids = {r["job"]["job_id"] for r in results}
        assert len(job_ids) == 1  # all ten landed on one job
        assert sum(1 for r in results if not r["deduped"]) == 1
        job_id = job_ids.pop()
        queue = JobQueue(root)
        assert queue.get(job_id).submissions == 10

        Worker(root, "w1").run(once=True)
        done = client.wait(job_id, timeout=60)
        assert done["state"] == "done"
        # The counting hook: exactly one pipeline execution.
        assert len(queue.builds()) == 1
        blobs = {client.artifact(job_id) for _ in range(3)}
        assert len(blobs) == 1  # every client reads identical bytes
