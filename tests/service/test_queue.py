"""Unit tests for the persistent job queue's state machine."""

import json
import os

import pytest

from repro.config import AnalysisConfig
from repro.service import JobQueue, job_id_for
from repro.service.queue import config_fields, suite_tag

CFG = AnalysisConfig.tiny()


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "svc")


class TestIdentity:
    def test_suite_tag_sorts_and_dedups(self):
        assert suite_tag(None) == "all"
        assert suite_tag(["B", "A", "B"]) == "A+B"
        assert "/" not in suite_tag(["we/ird"])

    def test_job_id_is_the_cache_key(self):
        assert job_id_for(None, CFG) == f"all-{CFG.full_key()}"

    def test_execution_knobs_do_not_change_job_identity(self):
        loud = CFG.replace(n_jobs=8, parallel_backend="thread", prefetch=3)
        assert job_id_for(["BMW"], loud) == job_id_for(["BMW"], CFG)
        assert "n_jobs" not in config_fields(loud)

    def test_result_affecting_fields_change_job_identity(self):
        assert job_id_for(None, CFG) != job_id_for(None, CFG.replace(seed=1))


class TestSubmission:
    def test_submit_enqueues(self, queue):
        view, deduped = queue.submit(suites=["BMW"], config=CFG, priority=3)
        assert not deduped
        assert view.state == "queued"
        assert view.priority == 3
        assert view.submissions == 1
        assert view.payload["suites"] == ["BMW"]
        assert view.payload["config"]["seed"] == CFG.seed

    def test_identical_submission_dedups(self, queue):
        first, _ = queue.submit(suites=["BMW"], config=CFG)
        second, deduped = queue.submit(suites=["BMW"], config=CFG)
        assert deduped
        assert second.job_id == first.job_id
        assert second.submissions == 2
        # Still exactly one queued job.
        assert len(queue.jobs()) == 1

    def test_execution_knob_variant_dedups_onto_the_same_job(self, queue):
        queue.submit(suites=["BMW"], config=CFG)
        _, deduped = queue.submit(suites=["BMW"], config=CFG.replace(n_jobs=4))
        assert deduped

    def test_different_config_is_a_different_job(self, queue):
        queue.submit(suites=["BMW"], config=CFG)
        _, deduped = queue.submit(suites=["BMW"], config=CFG.replace(seed=9))
        assert not deduped
        assert len(queue.jobs()) == 2

    def test_submission_onto_done_job_stays_done(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")
        queue.complete(view.job_id, "w1", {"artifact": "a.npz"})
        again, deduped = queue.submit(suites=["BMW"], config=CFG)
        assert deduped
        assert again.state == "done"  # cache hit at the queue level

    def test_resubmission_revives_a_failed_job(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")
        queue.fail(view.job_id, "w1", "boom")
        assert queue.get(view.job_id).state == "failed"
        revived, deduped = queue.submit(suites=["BMW"], config=CFG)
        assert not deduped
        assert revived.state == "queued"
        assert revived.attempt == 1  # attempt history survives the revival


class TestClaiming:
    def test_claim_marks_running_with_owner(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        claimed = queue.claim("w1")
        assert claimed.job_id == view.job_id
        assert claimed.state == "running"
        assert claimed.attempt == 1
        assert claimed.owner["worker"] == "w1"
        assert claimed.owner["pid"] == os.getpid()

    def test_claim_prefers_priority_then_fifo(self, queue):
        low, _ = queue.submit(suites=["BMW"], config=CFG, priority=0)
        high, _ = queue.submit(suites=["BMW"], config=CFG.replace(seed=9), priority=5)
        later, _ = queue.submit(suites=["BMW"], config=CFG.replace(seed=10), priority=0)
        assert queue.claim("w").job_id == high.job_id
        assert queue.claim("w").job_id == low.job_id  # FIFO among equals
        assert queue.claim("w").job_id == later.job_id
        assert queue.claim("w") is None

    def test_running_job_with_live_owner_is_not_reclaimed(self, queue):
        queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")  # owner pid: this live process
        assert queue.claim("w2") is None

    def test_dead_owner_job_is_reclaimed_with_bumped_attempt(self, queue, tmp_path):
        import subprocess
        import sys

        view, _ = queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")
        # Rewrite history: make the running record's owner a dead pid,
        # as if the claiming worker was SIGKILL'd mid-build.
        dead = int(
            subprocess.run(
                [sys.executable, "-c", "import os; print(os.getpid())"],
                capture_output=True,
                text=True,
            ).stdout.strip()
        )
        for envelope in queue.log.read():
            if envelope["record"].get("state") == "running":
                doc = json.loads(open(envelope["path"]).read())
                doc["record"]["owner"]["pid"] = dead
                from repro.io.records import canonical_digest, write_json_atomic

                doc["sha256"] = canonical_digest(doc["record"])
                write_json_atomic(envelope["path"], doc)
        reclaimed = queue.claim("w2")
        assert reclaimed is not None
        assert reclaimed.job_id == view.job_id
        assert reclaimed.attempt == 2
        assert reclaimed.owner["worker"] == "w2"

    def test_foreign_host_owner_reclaimed_only_after_lease(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")
        for envelope in queue.log.read():
            if envelope["record"].get("state") == "running":
                doc = json.loads(open(envelope["path"]).read())
                doc["record"]["owner"]["host"] = "another-box"
                from repro.io.records import canonical_digest, write_json_atomic

                doc["sha256"] = canonical_digest(doc["record"])
                write_json_atomic(envelope["path"], doc)
        assert queue.claim("w2", lease_timeout=3600) is None
        reclaimed = queue.claim("w2", lease_timeout=0.0)
        assert reclaimed is not None and reclaimed.attempt == 2


class TestCompletionAndLedger:
    def test_complete_records_result(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        queue.claim("w1")
        done = queue.complete(view.job_id, "w1", {"artifact": "x.npz", "sha256": "ab"})
        assert done.state == "done"
        assert done.result["sha256"] == "ab"
        assert done.owner is None

    def test_build_ledger_counts_builds(self, queue):
        assert queue.builds() == []
        queue.record_build("job-1", 1, "w1")
        queue.record_build("job-1", 2, "w2")
        builds = queue.builds()
        assert [b["attempt"] for b in builds] == [1, 2]
        assert queue.stats()["builds"] == 2

    def test_stats_counts_by_state(self, queue):
        queue.submit(suites=["BMW"], config=CFG)
        queue.submit(suites=["BMW"], config=CFG.replace(seed=9))
        queue.claim("w1")
        stats = queue.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"]["queued"] == 1
        assert stats["by_state"]["running"] == 1


class TestDurability:
    def test_state_survives_a_fresh_queue_object(self, queue, tmp_path):
        view, _ = queue.submit(suites=["BMW"], config=CFG, priority=2)
        queue.claim("w1")
        reopened = JobQueue(tmp_path / "svc")
        again = reopened.get(view.job_id)
        assert again.state == "running"
        assert again.priority == 2

    def test_corrupt_transition_record_is_tolerated(self, queue):
        view, _ = queue.submit(suites=["BMW"], config=CFG)
        claimed = queue.claim("w1")
        # Corrupt the running record: fold falls back to the queued state.
        for envelope in queue.log.read():
            if envelope["record"].get("state") == "running":
                raw = open(envelope["path"]).read()
                with open(envelope["path"], "w") as fh:
                    fh.write(raw[: len(raw) // 2])
        survivor = queue.get(view.job_id)
        assert survivor is not None
        assert survivor.state == "queued"
        assert claimed.state == "running"  # the pre-corruption view
