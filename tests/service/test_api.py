"""Socket-free tests of the HTTP API handler, error paths included."""

import json

import pytest

from repro.config import AnalysisConfig
from repro.service import MAX_BODY_BYTES, JobQueue, ServiceAPI, Worker, job_id_for

CFG = AnalysisConfig.tiny()


@pytest.fixture
def api(tmp_path):
    return ServiceAPI(tmp_path / "svc", default_preset="tiny")


def _post(api, doc):
    return api.handle("POST", "/jobs", body=json.dumps(doc).encode())


def _body(response):
    return json.loads(response.payload().decode())


class TestSubmission:
    def test_submit_returns_202_and_the_job(self, api):
        response = _post(api, {"suites": ["BMW"], "priority": 2})
        assert response.status == 202
        doc = _body(response)
        assert doc["deduped"] is False
        assert doc["job"]["state"] == "queued"
        assert doc["job"]["priority"] == 2
        assert doc["job"]["job_id"] == job_id_for(["BMW"], CFG)

    def test_duplicate_submission_dedups_with_200(self, api):
        first = _post(api, {"suites": ["BMW"]})
        second = _post(api, {"suites": ["BMW"]})
        assert first.status == 202
        assert second.status == 200
        doc = _body(second)
        assert doc["deduped"] is True
        assert doc["job"]["submissions"] == 2

    def test_empty_body_submits_the_default_job(self, api):
        response = api.handle("POST", "/jobs", body=b"")
        assert response.status == 202
        assert _body(response)["job"]["suites"] is None

    def test_config_override_changes_the_job(self, api):
        a = _body(_post(api, {"config": {"seed": 1}}))["job"]["job_id"]
        b = _body(_post(api, {"config": {"seed": 2}}))["job"]["job_id"]
        assert a != b
        assert a == job_id_for(None, CFG.replace(seed=1))


class TestSubmissionErrors:
    def test_malformed_json_body_is_400(self, api):
        response = api.handle("POST", "/jobs", body=b"{not json!")
        assert response.status == 400
        assert "malformed JSON" in _body(response)["error"]

    def test_non_object_body_is_400(self, api):
        assert api.handle("POST", "/jobs", body=b"[1,2]").status == 400

    def test_unknown_suite_is_400(self, api):
        response = _post(api, {"suites": ["NotASuite"]})
        assert response.status == 400
        assert "unknown suite 'NotASuite'" in _body(response)["error"]

    def test_non_list_suites_is_400(self, api):
        assert _post(api, {"suites": "BMW"}).status == 400

    def test_unknown_preset_is_400(self, api):
        response = _post(api, {"preset": "gigantic"})
        assert response.status == 400
        assert "unknown preset" in _body(response)["error"]

    def test_unknown_config_field_is_400(self, api):
        response = _post(api, {"config": {"n_cluster": 5}})  # typo'd field
        assert response.status == 400
        assert "n_cluster" in _body(response)["error"]

    def test_invalid_config_value_is_400(self, api):
        response = _post(api, {"config": {"n_key_characteristics": 0}})
        assert response.status == 400
        assert "invalid config" in _body(response)["error"]

    def test_execution_knob_in_config_is_400(self, api):
        response = _post(api, {"config": {"n_jobs": 8}})
        assert response.status == 400
        assert "execution knob" in _body(response)["error"]

    def test_streaming_config_is_400(self, api):
        assert _post(api, {"config": {"streaming": True}}).status == 400

    def test_non_integer_priority_is_400(self, api):
        assert _post(api, {"priority": "high"}).status == 400

    def test_oversized_body_is_413(self, api):
        padding = b"x" * (MAX_BODY_BYTES + 1)
        response = api.handle("POST", "/jobs", body=padding)
        assert response.status == 413

    def test_nothing_was_enqueued_by_any_bad_request(self, api):
        assert _body(api.handle("GET", "/jobs"))["jobs"] == []


class TestRoutes:
    def test_health_reports_stats(self, api):
        _post(api, {"suites": ["BMW"]})
        doc = _body(api.handle("GET", "/health"))
        assert doc["ok"] is True
        assert doc["jobs"] == 1
        assert doc["by_state"]["queued"] == 1

    def test_unknown_route_is_404(self, api):
        assert api.handle("GET", "/nope").status == 404
        assert api.handle("GET", "/jobs/zzz/nope").status == 404

    def test_unknown_job_is_404(self, api):
        assert api.handle("GET", "/jobs/zzz").status == 404
        assert api.handle("GET", "/jobs/zzz/progress").status == 404

    def test_wrong_method_is_405(self, api):
        assert api.handle("DELETE", "/jobs").status == 405
        assert api.handle("POST", "/health").status == 405
        _post(api, {"suites": ["BMW"]})
        job_id = job_id_for(["BMW"], CFG)
        assert api.handle("POST", f"/jobs/{job_id}").status == 405

    def test_artifact_before_done_is_404(self, api):
        _post(api, {"suites": ["BMW"]})
        job_id = job_id_for(["BMW"], CFG)
        response = api.handle("GET", f"/jobs/{job_id}/artifact")
        assert response.status == 404
        assert "state: queued" in _body(response)["error"]

    def test_report_before_done_is_404(self, api):
        _post(api, {"suites": ["BMW"]})
        job_id = job_id_for(["BMW"], CFG)
        assert api.handle("GET", f"/jobs/{job_id}/report").status == 404


class TestFinishedJobRoutes:
    @pytest.fixture
    def finished(self, api, tmp_path):
        _post(api, {"suites": ["BMW"]})
        Worker(tmp_path / "svc", "w1").run(once=True)
        return job_id_for(["BMW"], CFG)

    def test_job_doc_reports_done_with_result(self, api, finished):
        doc = _body(api.handle("GET", f"/jobs/{finished}"))
        assert doc["state"] == "done"
        assert doc["result"]["sha256"]

    def test_artifact_bytes_round_trip(self, api, finished, tmp_path):
        import hashlib

        response = api.handle("GET", f"/jobs/{finished}/artifact")
        assert response.status == 200
        assert response.content_type == "application/octet-stream"
        payload = response.payload()
        doc = _body(api.handle("GET", f"/jobs/{finished}"))
        assert hashlib.sha256(payload).hexdigest() == doc["result"]["sha256"]
        assert response.headers["X-Artifact-Sha256"] == doc["result"]["sha256"]
        # The bytes are a loadable characterization.
        out = tmp_path / "fetched.npz"
        out.write_bytes(payload)
        from repro.core import load_characterization

        assert load_characterization(out).clustering.k >= 1

    def test_events_stream_is_raw_jsonl(self, api, finished):
        response = api.handle("GET", f"/jobs/{finished}/events")
        assert response.status == 200
        assert response.content_type == "application/x-ndjson"
        lines = response.payload().decode().splitlines()
        first = json.loads(lines[0])
        assert first["type"] == "run.start"
        assert json.loads(lines[-1])["type"] == "run.end"

    def test_events_bad_attempt_is_400(self, api, finished):
        assert (
            api.handle("GET", f"/jobs/{finished}/events", {"attempt": "x"}).status
            == 400
        )

    def test_progress_summarizes_the_event_log(self, api, finished):
        doc = _body(api.handle("GET", f"/jobs/{finished}/progress"))
        assert doc["job"]["state"] == "done"
        assert doc["live"]["ended"] is not None
        assert doc["live"]["ok"] is True
        assert doc["live"]["truncated"] is False

    def test_report_is_schema_valid(self, api, finished):
        from repro.obs import validate_report

        response = api.handle("GET", f"/jobs/{finished}/report")
        assert response.status == 200
        assert validate_report(_body(response)) == []


class TestDedupOnFinishedJobs:
    def test_submission_after_done_is_an_immediate_cache_hit(self, api, tmp_path):
        _post(api, {"suites": ["BMW"]})
        Worker(tmp_path / "svc", "w1").run(once=True)
        response = _post(api, {"suites": ["BMW"]})
        assert response.status == 200
        doc = _body(response)
        assert doc["deduped"] is True
        assert doc["job"]["state"] == "done"  # artifact ready right now
        assert len(JobQueue(tmp_path / "svc").builds()) == 1
