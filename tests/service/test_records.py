"""Unit tests for the generic append-only record log."""

import json

from repro.io.records import RECORD_SCHEMA_VERSION, RecordLog, canonical_digest


def _log(tmp_path, **kwargs):
    return RecordLog(tmp_path / "log", schema="test:rec", **kwargs)


class TestAppendRead:
    def test_round_trip_and_ordering(self, tmp_path):
        log = _log(tmp_path)
        for i in range(3):
            log.append({"i": i}, tag=f"t{i}")
        envelopes = log.read()
        assert [e["seq"] for e in envelopes] == [1, 2, 3]
        assert [e["record"]["i"] for e in envelopes] == [0, 1, 2]
        for e in envelopes:
            assert e["schema"] == "test:rec"
            assert e["version"] == RECORD_SCHEMA_VERSION
            assert e["sha256"] == canonical_digest(e["record"])

    def test_empty_log_reads_empty(self, tmp_path):
        assert _log(tmp_path).read() == []

    def test_tag_is_sanitized_into_the_filename(self, tmp_path):
        log = _log(tmp_path)
        envelope = log.append({"x": 1}, tag="a/b c!")
        assert "a_b_c_" in envelope["path"]

    def test_seq_survives_lost_counter(self, tmp_path):
        log = _log(tmp_path)
        log.append({"i": 0})
        log.append({"i": 1})
        (log.root / "COUNTER").unlink()
        envelope = log.append({"i": 2})
        # Scanning the record files themselves prevents seq reuse.
        assert envelope["seq"] == 3


class TestVerification:
    def test_tampered_record_is_quarantined_and_skipped(self, tmp_path):
        log = _log(tmp_path)
        log.append({"i": 0})
        bad = log.append({"i": 1})
        log.append({"i": 2})
        path = bad["path"]
        doc = json.loads(open(path).read())
        doc["record"]["i"] = 999  # digest no longer matches
        with open(path, "w") as fh:
            json.dump(doc, fh)
        envelopes = log.read()
        assert [e["record"]["i"] for e in envelopes] == [0, 2]
        assert list(log.root.glob("*.corrupt-*"))

    def test_truncated_record_is_quarantined(self, tmp_path):
        log = _log(tmp_path)
        envelope = log.append({"payload": "x" * 100})
        raw = open(envelope["path"]).read()
        with open(envelope["path"], "w") as fh:
            fh.write(raw[: len(raw) // 2])
        assert log.read() == []
        assert list(log.root.glob("*.corrupt-*"))

    def test_wrong_schema_is_rejected(self, tmp_path):
        a = RecordLog(tmp_path / "log", schema="schema:a", prefix="rec")
        b = RecordLog(tmp_path / "log", schema="schema:b", prefix="rec")
        a.append({"x": 1})
        assert b.read() == []  # quarantined as schema-mismatched


class TestConcurrency:
    def test_threaded_appends_yield_gap_free_unique_seqs(self, tmp_path):
        import threading

        log = _log(tmp_path)
        errors = []

        def appender(k):
            try:
                for i in range(5):
                    log.append({"writer": k, "i": i})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=appender, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        seqs = [e["seq"] for e in log.read()]
        assert seqs == list(range(1, 21))
