"""Worker tests: build, cache hit, failure, and SIGKILL'd-worker resume."""

import subprocess
import sys

import pytest

from repro.config import AnalysisConfig
from repro.core import characterize_to_file
from repro.service import JobQueue, Worker, artifact_path, events_path, job_dir
from repro.service.worker import config_from_fields, file_digest
from tests.io.faults import env_with_src, sigkill_rc

CFG = AnalysisConfig.tiny()
SUITES = ["BMW"]


@pytest.fixture
def root(tmp_path):
    return tmp_path / "svc"


def test_config_round_trips_through_the_payload():
    queue_payloadish = {
        k: v
        for k, v in CFG.replace(seed=5).__dict__.items()
        if k not in AnalysisConfig.EXECUTION_KNOBS
    }
    rebuilt = config_from_fields(queue_payloadish)
    assert rebuilt.full_key() == CFG.replace(seed=5).full_key()


class TestProcess:
    def test_worker_builds_and_completes(self, root):
        queue = JobQueue(root)
        view, _ = queue.submit(suites=SUITES, config=CFG)
        worker = Worker(root, "w1")
        assert worker.run(once=True) == 1
        done = queue.get(view.job_id)
        assert done.state == "done"
        assert done.result["cached"] is False
        artifact = artifact_path(root, view.job_id)
        assert artifact.exists()
        assert done.result["sha256"] == file_digest(artifact)
        assert done.result["n_intervals"] > 0
        # One build in the ledger, telemetry + report on disk.
        assert len(queue.builds()) == 1
        assert events_path(root, view.job_id, 1).exists()
        assert (job_dir(root, view.job_id) / "report.json").exists()

    def test_job_scoped_run_id_stamps_the_event_log(self, root):
        import json

        queue = JobQueue(root)
        view, _ = queue.submit(suites=SUITES, config=CFG)
        Worker(root, "w1").run(once=True)
        first = json.loads(
            events_path(root, view.job_id, 1).read_text().splitlines()[0]
        )
        assert first["run_id"] == f"{view.job_id}.a1"
        assert first["type"] == "run.start"
        assert first["pid"] > 0

    def test_existing_artifact_is_a_cache_hit_not_a_build(self, root):
        queue = JobQueue(root)
        view, _ = queue.submit(suites=SUITES, config=CFG)
        Worker(root, "w1").run(once=True)
        assert len(queue.builds()) == 1
        # Fail-and-revive the job while its artifact survives: the next
        # worker must serve the bytes it already has, not recompute.
        queue.submit(suites=SUITES, config=CFG)  # deduped, still done
        fresh_queue_root_jobs = queue.jobs()
        assert fresh_queue_root_jobs[view.job_id].state == "done"
        # Force a rerun by reviving through the failed path.
        queue.log.append(
            {"job": view.job_id, "state": "failed", "worker": "x", "error": "forced"},
            tag="forced",
        )
        revived, deduped = queue.submit(suites=SUITES, config=CFG)
        assert not deduped and revived.state == "queued"
        Worker(root, "w2").run(once=True)
        done = queue.get(view.job_id)
        assert done.state == "done"
        assert done.result["cached"] is True
        assert len(queue.builds()) == 1  # no second build line

    def test_failing_job_is_marked_failed_and_worker_survives(self, root):
        queue = JobQueue(root)
        # Poison the payload with a suite the registry does not know;
        # the worker must fail the job, not die.
        queue.log.append(
            {
                "job": "poison",
                "state": "queued",
                "priority": 0,
                "payload": {"suites": ["no-such-suite"], "config": {}},
            },
            tag="poison",
        )
        worker = Worker(root, "w1")
        assert worker.run(once=True) == 1
        failed = queue.get("poison")
        assert failed.state == "failed"
        assert "no-such-suite" in failed.error

    def test_two_workers_drain_distinct_jobs(self, root):
        queue = JobQueue(root)
        a, _ = queue.submit(suites=SUITES, config=CFG)
        b, _ = queue.submit(suites=SUITES, config=CFG.replace(seed=9))
        w1, w2 = Worker(root, "w1"), Worker(root, "w2")
        assert w1.run_once() and w2.run_once()
        states = {v.job_id: v.state for v in queue.jobs().values()}
        assert states == {a.job_id: "done", b.job_id: "done"}
        builds = queue.builds()
        assert len(builds) == 2
        assert {x["worker"] for x in builds} == {"w1", "w2"}


_WORKER_CODE = """
import sys
from repro.service import run_worker
sys.exit(run_worker(sys.argv[1], name=sys.argv[2], once=True))
"""


class TestSigkillResume:
    def test_killed_worker_job_resumes_bit_identically(self, root, tmp_path):
        """A SIGKILL'd worker's job is reclaimed and resumed, not restarted.

        Worker 1 dies right after the dataset stage checkpoint lands
        (fault injection).  Worker 2 reclaims the abandoned running job,
        resumes from the checkpoint, and the finished artifact is
        bit-identical to a clean single-shot build of the same job.
        """
        queue = JobQueue(root)
        view, _ = queue.submit(suites=SUITES, config=CFG)

        killed = subprocess.run(
            [sys.executable, "-c", _WORKER_CODE, str(root), "victim"],
            env=env_with_src(REPRO_FAULT_SIGKILL_AFTER="dataset"),
            capture_output=True,
            timeout=300,
        )
        assert killed.returncode == sigkill_rc()
        abandoned = queue.get(view.job_id)
        assert abandoned.state == "running"  # the kill left it claimed
        artifact = artifact_path(root, view.job_id)
        assert not artifact.exists()
        # The dataset stage checkpoint survived the kill.
        stage_dir = artifact.parent / (artifact.name + ".stages")
        assert any(stage_dir.glob("stage_dataset_*.npz"))

        rescued = subprocess.run(
            [sys.executable, "-c", _WORKER_CODE, str(root), "rescuer"],
            env=env_with_src(),
            capture_output=True,
            timeout=300,
        )
        assert rescued.returncode == 0, rescued.stderr.decode()
        done = queue.get(view.job_id)
        assert done.state == "done"
        assert done.attempt == 2
        assert done.owner is None

        # Bit-identity: a clean single-shot build of the same suites +
        # config yields byte-for-byte the same artifact.
        clean = tmp_path / "clean.npz"
        from repro.suites import get_suite

        benches = list(get_suite("BMW").benchmarks)
        characterize_to_file(benches, CFG, clean, suite_tag="BMW")
        assert file_digest(artifact) == file_digest(clean)
        assert done.result["sha256"] == file_digest(clean)
        # Both attempts consumed a build-ledger line: the ledger counts
        # pipeline executions started, and the kill consumed one.
        attempts = [b["attempt"] for b in queue.builds()]
        assert attempts == [1, 2]
        # Each attempt left its own telemetry log; the killed one has
        # no run.end, the rescuer's does.
        assert events_path(root, view.job_id, 1).exists()
        assert events_path(root, view.job_id, 2).exists()
        assert "run.end" not in events_path(root, view.job_id, 1).read_text()
        assert "run.end" in events_path(root, view.job_id, 2).read_text()
