"""Tests for the characterization service (queue, workers, HTTP API)."""
