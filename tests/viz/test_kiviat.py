"""Tests for kiviat scaling and rendering."""

import numpy as np
import pytest

from repro.viz import KiviatScale, SvgCanvas, draw_kiviat


@pytest.fixture
def scale():
    matrix = np.array(
        [
            [0.0, 10.0, 5.0],
            [1.0, 20.0, 5.0],
            [2.0, 30.0, 5.0],
        ]
    )
    return KiviatScale.fit(matrix, ["a", "b", "c"])


def test_fit_statistics(scale):
    assert scale.minimum.tolist() == [0.0, 10.0, 5.0]
    assert scale.maximum.tolist() == [2.0, 30.0, 5.0]
    assert scale.mean.tolist() == [1.0, 20.0, 5.0]


def test_normalize_maps_to_unit_range(scale):
    f = scale.normalize(np.array([0.0, 30.0, 5.0]))
    assert f[0] == pytest.approx(0.0)
    assert f[1] == pytest.approx(1.0)
    # Constant axis maps to 0 without dividing by zero.
    assert f[2] == pytest.approx(0.0)


def test_normalize_clips_out_of_range(scale):
    f = scale.normalize(np.array([-5.0, 100.0, 5.0]))
    assert f[0] == 0.0
    assert f[1] == 1.0


def test_normalize_rejects_wrong_length(scale):
    with pytest.raises(ValueError):
        scale.normalize(np.zeros(4))


def test_ring_fractions_ordered(scale):
    low, mid, high = scale.ring_fractions()
    assert (low <= mid + 1e-12).all()
    assert (mid <= high + 1e-12).all()


def test_fit_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        KiviatScale.fit(np.zeros((3, 2)), ["a", "b", "c"])


def test_fit_requires_two_phases():
    with pytest.raises(ValueError):
        KiviatScale.fit(np.zeros((1, 3)), ["a", "b", "c"])


def test_draw_kiviat_emits_polygons(scale):
    canvas = SvgCanvas(200, 200)
    draw_kiviat(canvas, 100, 100, 80, np.array([1.0, 20.0, 5.0]), scale)
    s = canvas.to_string()
    # outer ring + 3 stat rings + phase polygon = 5 polygons
    assert s.count("<polygon") == 5


def test_draw_kiviat_axis_labels(scale):
    canvas = SvgCanvas(200, 200)
    draw_kiviat(
        canvas, 100, 100, 80, np.array([0.0, 10.0, 5.0]), scale, label_axes=True
    )
    s = canvas.to_string()
    assert ">1<" in s and ">3<" in s
