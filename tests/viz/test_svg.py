"""Tests for the SVG writer."""

import math

import pytest

from repro.viz import SvgCanvas, polar_points


def test_canvas_produces_valid_skeleton():
    c = SvgCanvas(100, 50)
    s = c.to_string()
    assert s.startswith("<svg")
    assert 'width="100"' in s
    assert s.rstrip().endswith("</svg>")


def test_canvas_rejects_bad_dimensions():
    with pytest.raises(ValueError):
        SvgCanvas(0, 10)


def test_elements_appear_in_output():
    c = SvgCanvas(10, 10)
    c.line(0, 0, 5, 5)
    c.circle(5, 5, 2)
    c.polygon([(0, 0), (1, 0), (0, 1)])
    c.text(1, 1, "hello")
    s = c.to_string()
    for tag in ("<line", "<circle", "<polygon", "<text"):
        assert tag in s
    assert "hello" in s


def test_text_is_escaped():
    c = SvgCanvas(10, 10)
    c.text(0, 0, "<b>&x</b>")
    s = c.to_string()
    assert "<b>" not in s
    assert "&amp;x" in s


def test_full_circle_wedge_is_circle():
    c = SvgCanvas(10, 10)
    c.wedge(5, 5, 3, 0.0, 1.0)
    assert "<circle" in c.to_string()


def test_partial_wedge_is_path():
    c = SvgCanvas(10, 10)
    c.wedge(5, 5, 3, 0.0, 0.25)
    assert "<path" in c.to_string()


def test_large_wedge_uses_large_arc_flag():
    c = SvgCanvas(10, 10)
    c.wedge(5, 5, 3, 0.0, 0.75)
    assert " 1 1 " in c.to_string()


def test_polar_points_geometry():
    pts = polar_points(0, 0, [1.0, 1.0, 1.0, 1.0])
    # First axis points up.
    assert pts[0][0] == pytest.approx(0.0, abs=1e-9)
    assert pts[0][1] == pytest.approx(-1.0)
    # All on the unit circle.
    for x, y in pts:
        assert math.hypot(x, y) == pytest.approx(1.0)


def test_polar_points_requires_three_axes():
    with pytest.raises(ValueError):
        polar_points(0, 0, [1.0, 2.0])
