"""Tests for the HTML report index."""

from repro.viz import (
    render_prominent_phase_pages,
    write_report_index,
    write_workload_space_map,
)


def test_index_written_with_summary(small_result, tmp_path):
    index = write_report_index(small_result, tmp_path)
    assert index.name == "index.html"
    content = index.read_text()
    assert "sampled intervals" in content
    assert str(len(small_result.dataset)) in content
    for name in small_result.key_characteristics:
        assert name in content


def test_index_embeds_svg_pages(small_result, tmp_path):
    pages = render_prominent_phase_pages(small_result, tmp_path)
    scatter = write_workload_space_map(small_result, tmp_path / "map.svg")
    index = write_report_index(
        small_result, tmp_path, svg_pages=list(pages) + [scatter]
    )
    content = index.read_text()
    for page in pages:
        assert page.name in content
    assert "map.svg" in content


def test_index_inlines_text_reports(small_result, tmp_path):
    report = tmp_path / "fig4.txt"
    report.write_text("SPECfp2006 ### 82")
    index = write_report_index(small_result, tmp_path, text_reports=[report])
    content = index.read_text()
    assert "SPECfp2006 ### 82" in content


def test_index_escapes_html_in_reports(small_result, tmp_path):
    report = tmp_path / "evil.txt"
    report.write_text("<script>alert(1)</script>")
    index = write_report_index(small_result, tmp_path, text_reports=[report])
    assert "<script>" not in index.read_text()
