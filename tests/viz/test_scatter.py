"""Tests for the workload-space scatter map."""

import pytest

from repro.viz import workload_space_map, write_workload_space_map


def test_map_is_valid_svg(small_result):
    svg = workload_space_map(small_result)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")


def test_map_contains_all_suites_in_legend(small_result):
    svg = workload_space_map(small_result)
    for suite in small_result.dataset.suite_names():
        assert suite in svg


def test_map_draws_one_point_per_interval(small_result):
    svg = workload_space_map(small_result)
    # Points plus 7 legend dots.
    n_points = svg.count("fill-opacity=\"0.55\"")
    assert n_points == len(small_result.dataset)


def test_component_selection(small_result):
    svg = workload_space_map(small_result, components=(1, 2))
    assert "PC2" in svg and "PC3" in svg


def test_component_out_of_range(small_result):
    with pytest.raises(ValueError):
        workload_space_map(small_result, components=(0, 99))


def test_write_map(small_result, tmp_path):
    path = write_workload_space_map(small_result, tmp_path / "map.svg")
    assert path.exists()
    assert path.read_text().startswith("<svg")
