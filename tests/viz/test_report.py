"""Tests for the figure-page generator."""

import pytest

from repro.viz import build_kiviat_scale, render_prominent_phase_pages


def test_pages_written(small_result, tmp_path):
    pages = render_prominent_phase_pages(small_result, tmp_path / "figs")
    assert len(pages) >= 2  # at least one group page + legend
    for p in pages:
        assert p.exists()
        content = p.read_text()
        assert content.startswith("<svg")
        assert content.rstrip().endswith("</svg>")


def test_legend_lists_key_characteristics(small_result, tmp_path):
    pages = render_prominent_phase_pages(small_result, tmp_path / "figs")
    legend = [p for p in pages if "legend" in p.name][0]
    content = legend.read_text()
    for name in small_result.key_characteristics:
        assert name in content


def test_group_pages_have_weights(small_result, tmp_path):
    pages = render_prominent_phase_pages(small_result, tmp_path / "figs")
    group_pages = [p for p in pages if "legend" not in p.name]
    assert any("weight:" in p.read_text() for p in group_pages)


def test_build_scale_requires_key_characteristics(small_dataset, small_config):
    from repro.core import run_characterization

    res = run_characterization(small_dataset, small_config, select_key=False)
    with pytest.raises(ValueError):
        build_kiviat_scale(res)
