"""Tests for SVG bar/line charts."""

import numpy as np
import pytest

from repro.viz import bar_chart_svg, line_chart_svg


def test_bar_chart_valid_svg():
    svg = bar_chart_svg({"a": 10.0, "bb": 5.0}, title="t", unit="%")
    assert svg.startswith("<svg")
    assert svg.count("<rect") >= 3  # background + two bars
    assert "a" in svg and "bb" in svg
    assert "10%" in svg


def test_bar_chart_scales_to_peak():
    svg = bar_chart_svg({"big": 100.0, "half": 50.0})
    import re

    widths = [
        float(m) for m in re.findall(r'<rect x="[\d.]+" y="[\d.]+" width="([\d.]+)"', svg)
    ]
    assert len(widths) == 2
    assert widths[0] == pytest.approx(2 * widths[1], rel=0.02)


def test_bar_chart_rejects_empty():
    with pytest.raises(ValueError):
        bar_chart_svg({})


def test_line_chart_valid_svg():
    curves = {
        "s1": np.array([0.5, 0.8, 1.0]),
        "s2": np.array([0.2, 0.4, 0.6, 0.8, 1.0]),
    }
    svg = line_chart_svg(curves, title="fig5")
    assert svg.startswith("<svg")
    assert svg.count("<path") == 2
    assert "s1" in svg and "s2" in svg
    assert "100%" in svg


def test_line_chart_max_x_clips():
    curves = {"s": np.linspace(0.1, 1.0, 50)}
    svg = line_chart_svg(curves, max_x=10)
    assert svg.count(" L ") >= 1


def test_line_chart_rejects_empty():
    with pytest.raises(ValueError):
        line_chart_svg({})
    with pytest.raises(ValueError):
        line_chart_svg({"s": np.array([])})
