"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.viz import KiviatScale, ascii_bar_chart, ascii_curve_table, ascii_kiviat


@pytest.fixture
def scale():
    matrix = np.array([[0.0, 0.0], [10.0, 1.0]])
    return KiviatScale.fit(matrix, ["alpha", "b"])


def test_ascii_kiviat_line_per_axis(scale):
    lines = ascii_kiviat(np.array([10.0, 0.0]), scale, width=10)
    assert len(lines) == 2
    assert lines[0].startswith("alpha")
    assert "##########" in lines[0]  # full bar for max value
    assert "----------" in lines[1]  # empty bar for min value


def test_ascii_kiviat_includes_values(scale):
    lines = ascii_kiviat(np.array([5.0, 0.5]), scale)
    assert "5" in lines[0]
    assert "0.5" in lines[1]


def test_ascii_bar_chart_scales_to_peak():
    lines = ascii_bar_chart({"x": 10.0, "y": 5.0}, width=10)
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5


def test_ascii_bar_chart_empty():
    assert ascii_bar_chart({}) == []


def test_ascii_curve_table_checkpoints():
    curves = {"s": np.array([0.5, 0.8, 1.0])}
    lines = ascii_curve_table(curves, [1, 2, 3, 10])
    assert len(lines) == 2
    assert "50.0%" in lines[1]
    assert "100.0%" in lines[1]


def test_ascii_curve_table_clamps_past_end():
    curves = {"s": np.array([1.0])}
    lines = ascii_curve_table(curves, [5])
    assert "100.0%" in lines[1]
