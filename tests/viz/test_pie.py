"""Tests for pie-chart rendering."""

import pytest

from repro.viz import SvgCanvas, draw_pie


def test_legend_matches_major_shares():
    canvas = SvgCanvas(100, 100)
    legend = draw_pie(
        canvas, 50, 50, 40, [("a", 0.6), ("b", 0.4)], min_slice=0.05
    )
    assert [label for label, _ in legend] == ["a", "b"]
    assert canvas.to_string().count("<path") == 2


def test_minor_shares_merged_into_other():
    canvas = SvgCanvas(100, 100)
    shares = [("big", 0.95)] + [(f"tiny{i}", 0.01) for i in range(5)]
    legend = draw_pie(canvas, 50, 50, 40, shares, min_slice=0.02)
    labels = [label for label, _ in legend]
    assert labels[0] == "big"
    assert labels[-1].startswith("other")
    assert "(5)" in labels[-1]


def test_shares_are_normalized():
    canvas = SvgCanvas(100, 100)
    legend = draw_pie(canvas, 50, 50, 40, [("a", 3.0), ("b", 1.0)])
    assert len(legend) == 2


def test_single_full_share_draws_circle():
    canvas = SvgCanvas(100, 100)
    draw_pie(canvas, 50, 50, 40, [("only", 1.0)])
    assert "<circle" in canvas.to_string()


def test_rejects_nonpositive_total():
    canvas = SvgCanvas(100, 100)
    with pytest.raises(ValueError):
        draw_pie(canvas, 50, 50, 40, [("a", 0.0)])


def test_colors_are_distinct_for_major_slices():
    canvas = SvgCanvas(100, 100)
    legend = draw_pie(
        canvas, 50, 50, 40, [(f"s{i}", 0.2) for i in range(5)], min_slice=0.01
    )
    colors = [c for _, c in legend]
    assert len(set(colors)) == len(colors)
