"""Tests for the distance-correlation fitness."""

import numpy as np
import pytest

from repro.ga import DistanceCorrelationFitness


@pytest.fixture
def phases():
    rng = np.random.default_rng(21)
    # 30 phases over 10 features; the first 3 features carry the signal,
    # the rest echo them with noise (so subsets can do well).
    signal = rng.normal(size=(30, 3))
    echo = signal @ rng.normal(size=(3, 7)) + 0.05 * rng.normal(size=(30, 7))
    return np.hstack([signal, echo])


def test_full_mask_is_perfect(phases):
    fitness = DistanceCorrelationFitness(phases)
    assert fitness(np.ones(10, dtype=bool)) == pytest.approx(1.0)


def test_empty_mask_is_worst(phases):
    fitness = DistanceCorrelationFitness(phases)
    assert fitness(np.zeros(10, dtype=bool)) == -1.0


def test_signal_subset_beats_noise_subset(phases):
    fitness = DistanceCorrelationFitness(phases)
    signal_mask = np.zeros(10, dtype=bool)
    signal_mask[:3] = True
    single = np.zeros(10, dtype=bool)
    single[9] = True
    assert fitness(signal_mask) > fitness(single)


def test_signal_subset_scores_high(phases):
    fitness = DistanceCorrelationFitness(phases)
    mask = np.zeros(10, dtype=bool)
    mask[:3] = True
    assert fitness(mask) > 0.7


def test_mask_length_checked(phases):
    fitness = DistanceCorrelationFitness(phases)
    with pytest.raises(ValueError):
        fitness(np.ones(5, dtype=bool))


def test_caching_returns_identical_values(phases):
    fitness = DistanceCorrelationFitness(phases)
    mask = np.zeros(10, dtype=bool)
    mask[2:6] = True
    assert fitness(mask) == fitness(mask.copy())


def test_requires_three_phases():
    with pytest.raises(ValueError):
        DistanceCorrelationFitness(np.ones((2, 5)))


def test_matches_exact_svd_path(phases):
    # The Gram-matrix PCA must agree with the from-scratch SVD pipeline
    # to numerical precision for every mask cardinality.
    from repro.stats import condensed_distances, pearson, rescaled_pca_space

    fitness = DistanceCorrelationFitness(phases)
    rng = np.random.default_rng(3)
    for size in (1, 2, 5, 10):
        mask = np.zeros(10, dtype=bool)
        mask[rng.choice(10, size=size, replace=False)] = True
        exact_space = rescaled_pca_space(phases[:, mask])
        exact = pearson(
            condensed_distances(exact_space), fitness.reference_distances
        )
        assert fitness(mask) == pytest.approx(exact, abs=1e-10)


def test_batch_matches_sequential(phases):
    rng = np.random.default_rng(4)
    masks = []
    for _ in range(12):
        m = np.zeros(10, dtype=bool)
        m[rng.choice(10, size=int(rng.integers(1, 11)), replace=False)] = True
        masks.append(m)
    masks.append(np.zeros(10, dtype=bool))  # empty mask inline
    batch = DistanceCorrelationFitness(phases).evaluate_population(masks)
    fresh = DistanceCorrelationFitness(phases)
    sequential = [fresh(m) for m in masks]
    assert batch == pytest.approx(sequential, abs=1e-12)


def test_cache_hit_counters(phases):
    fitness = DistanceCorrelationFitness(phases)
    mask = np.zeros(10, dtype=bool)
    mask[:4] = True
    fitness(mask)
    fitness(mask)
    fitness(mask.copy())
    info = fitness.cache_info()
    assert info["lookups"] == 3
    assert info["hits"] == 2
    assert info["hit_rate"] == pytest.approx(2 / 3)
    assert info["size"] == 1


def test_lru_eviction_bounds_cache(phases):
    fitness = DistanceCorrelationFitness(phases, cache_size=3)
    masks = []
    for i in range(6):
        m = np.zeros(10, dtype=bool)
        m[i] = True
        masks.append(m)
        fitness(m)
    assert fitness.cache_info()["size"] == 3
    # The three most recent survive; re-scoring them is all hits.
    before = fitness.cache_info()["hits"]
    for m in masks[3:]:
        fitness(m)
    assert fitness.cache_info()["hits"] == before + 3
    # The evicted oldest mask misses (recomputed, value unchanged).
    assert fitness(masks[0]) == pytest.approx(fitness(masks[0]))


def test_lru_recency_updated_on_hit(phases):
    fitness = DistanceCorrelationFitness(phases, cache_size=2)
    a, b, c = (np.zeros(10, dtype=bool) for _ in range(3))
    a[0], b[1], c[2] = True, True, True
    fitness(a)
    fitness(b)
    fitness(a)  # refresh a; b is now least recent
    fitness(c)  # evicts b
    hits = fitness.cache_info()["hits"]
    fitness(a)
    assert fitness.cache_info()["hits"] == hits + 1


def test_rejects_bad_cache_size(phases):
    with pytest.raises(ValueError):
        DistanceCorrelationFitness(phases, cache_size=0)


def test_unbounded_cache_allowed(phases):
    fitness = DistanceCorrelationFitness(phases, cache_size=None)
    for i in range(10):
        m = np.zeros(10, dtype=bool)
        m[i] = True
        fitness(m)
    assert fitness.cache_info()["size"] == 10
    assert fitness.cache_info()["max_size"] is None
