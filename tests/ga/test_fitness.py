"""Tests for the distance-correlation fitness."""

import numpy as np
import pytest

from repro.ga import DistanceCorrelationFitness


@pytest.fixture
def phases():
    rng = np.random.default_rng(21)
    # 30 phases over 10 features; the first 3 features carry the signal,
    # the rest echo them with noise (so subsets can do well).
    signal = rng.normal(size=(30, 3))
    echo = signal @ rng.normal(size=(3, 7)) + 0.05 * rng.normal(size=(30, 7))
    return np.hstack([signal, echo])


def test_full_mask_is_perfect(phases):
    fitness = DistanceCorrelationFitness(phases)
    assert fitness(np.ones(10, dtype=bool)) == pytest.approx(1.0)


def test_empty_mask_is_worst(phases):
    fitness = DistanceCorrelationFitness(phases)
    assert fitness(np.zeros(10, dtype=bool)) == -1.0


def test_signal_subset_beats_noise_subset(phases):
    fitness = DistanceCorrelationFitness(phases)
    signal_mask = np.zeros(10, dtype=bool)
    signal_mask[:3] = True
    single = np.zeros(10, dtype=bool)
    single[9] = True
    assert fitness(signal_mask) > fitness(single)


def test_signal_subset_scores_high(phases):
    fitness = DistanceCorrelationFitness(phases)
    mask = np.zeros(10, dtype=bool)
    mask[:3] = True
    assert fitness(mask) > 0.7


def test_mask_length_checked(phases):
    fitness = DistanceCorrelationFitness(phases)
    with pytest.raises(ValueError):
        fitness(np.ones(5, dtype=bool))


def test_caching_returns_identical_values(phases):
    fitness = DistanceCorrelationFitness(phases)
    mask = np.zeros(10, dtype=bool)
    mask[2:6] = True
    assert fitness(mask) == fitness(mask.copy())


def test_requires_three_phases():
    with pytest.raises(ValueError):
        DistanceCorrelationFitness(np.ones((2, 5)))
