"""Tests for the genetic algorithm."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.ga import correlation_curve, select_features
from repro.synth import generator


@pytest.fixture
def cfg():
    return AnalysisConfig.tiny()


def counting_fitness(mask):
    """Best solution: select exactly the first bits (weighted prefix)."""
    weights = np.linspace(1.0, 0.1, len(mask))
    return float((weights * mask).sum() / weights.sum())


def test_result_has_requested_cardinality(cfg):
    res = select_features(
        counting_fitness, 20, 5, config=cfg, rng=generator("ga", 1)
    )
    assert res.mask.sum() == 5


def test_finds_near_optimal_subset(cfg):
    cfg = cfg.replace(ga_generations=30, ga_population_size=16)
    res = select_features(
        counting_fitness, 20, 4, config=cfg, rng=generator("ga", 2)
    )
    optimal = np.zeros(20, dtype=bool)
    optimal[:4] = True
    assert res.fitness >= 0.95 * counting_fitness(optimal)
    # The single heaviest feature is always found.
    assert 0 in set(int(i) for i in res.selected_indices())


def test_history_is_monotone_nondecreasing(cfg):
    res = select_features(
        counting_fitness, 15, 3, config=cfg, rng=generator("ga", 3)
    )
    assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))


def test_fitness_matches_mask(cfg):
    res = select_features(
        counting_fitness, 15, 3, config=cfg, rng=generator("ga", 4)
    )
    assert res.fitness == pytest.approx(counting_fitness(res.mask))


def test_deterministic_given_rng(cfg):
    a = select_features(counting_fitness, 12, 4, config=cfg, rng=generator("ga", 5))
    b = select_features(counting_fitness, 12, 4, config=cfg, rng=generator("ga", 5))
    assert (a.mask == b.mask).all()
    assert a.fitness == b.fitness


def test_rejects_bad_cardinality(cfg):
    with pytest.raises(ValueError):
        select_features(counting_fitness, 10, 0, config=cfg, rng=generator("ga", 6))
    with pytest.raises(ValueError):
        select_features(counting_fitness, 10, 11, config=cfg, rng=generator("ga", 7))


def test_full_cardinality_selects_everything(cfg):
    res = select_features(
        counting_fitness, 8, 8, config=cfg, rng=generator("ga", 8)
    )
    assert res.mask.all()


def test_correlation_curve_improves_with_size(cfg):
    curve = correlation_curve(
        counting_fitness, 20, [1, 4, 10], config=cfg, rng=generator("ga", 9)
    )
    assert list(curve) == [1, 4, 10]
    fits = [curve[s].fitness for s in (1, 4, 10)]
    assert fits[0] < fits[1] < fits[2]


def test_stall_terminates_early():
    cfg = AnalysisConfig.tiny().replace(ga_generations=100, ga_stall_generations=2)
    res = select_features(
        lambda m: 0.5, 10, 3, config=cfg, rng=generator("ga", 10)
    )
    assert res.generations < 100


def test_progress_lines_emitted_per_generation(cfg):
    lines = []
    res = select_features(
        counting_fitness, 15, 3, config=cfg, rng=generator("ga", 11),
        progress=lines.append,
    )
    assert len(lines) == res.generations
    assert all("best" in line for line in lines)


def test_progress_line_includes_cache_hit_rate(cfg):
    from repro.ga import DistanceCorrelationFitness

    rng = np.random.default_rng(12)
    fitness = DistanceCorrelationFitness(rng.normal(size=(12, 15)))
    lines = []
    select_features(
        fitness, 15, 4, config=cfg, rng=generator("ga", 12),
        progress=lines.append,
    )
    assert lines
    assert all("cache hit rate" in line for line in lines)


def test_progress_defaults_to_silent(cfg, capsys):
    select_features(counting_fitness, 10, 3, config=cfg, rng=generator("ga", 13))
    assert capsys.readouterr().out == ""


def test_batch_fitness_path_matches_plain_callable(cfg):
    from repro.ga import DistanceCorrelationFitness

    rng = np.random.default_rng(14)
    phases = rng.normal(size=(14, 12))
    batched = DistanceCorrelationFitness(phases)
    plain = DistanceCorrelationFitness(phases)
    a = select_features(batched, 12, 4, config=cfg, rng=generator("ga", 15))
    # Hide the batch path: the GA falls back to one-by-one calls.
    b = select_features(
        lambda m: plain(m), 12, 4, config=cfg, rng=generator("ga", 15)
    )
    assert (a.mask == b.mask).all()
    assert a.fitness == pytest.approx(b.fitness)
