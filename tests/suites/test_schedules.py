"""Structural tests over all 77 benchmark schedules."""

import pytest

from repro.config import AnalysisConfig
from repro.suites import all_benchmarks

CFG = AnalysisConfig.tiny()


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.key)
def test_schedule_fractions_normalized(bench):
    schedule = bench.schedule_factory(bench.seed)
    total = sum(p.fraction for p in schedule.phases)
    assert total == pytest.approx(1.0)
    assert schedule.repeat >= 1


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.key)
def test_schedule_factory_is_stable(bench):
    a = bench.schedule_factory(bench.seed)
    b = bench.schedule_factory(bench.seed)
    assert len(a) == len(b)
    for pa, pb in zip(a.phases, b.phases):
        assert pa.fraction == pytest.approx(pb.fraction)
        # Same kernel class and name (kernels are rebuilt but from the
        # same deterministic seeds).
        assert type(pa.kernel) is type(pb.kernel)
        assert pa.kernel.name == pb.kernel.name


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.key)
def test_first_and_last_intervals_generate(bench):
    for index in (0, bench.n_intervals - 1):
        trace = bench.program.interval_trace(index, 256)
        trace.validate()
        assert len(trace) == 256


def test_every_benchmark_has_some_memory_and_branches():
    # Real programs always touch memory and branch; a model that does
    # neither would distort the mix statistics for the whole suite.
    from repro.isa import OpClass

    for bench in all_benchmarks():
        trace = bench.program.interval_trace(0, 2000)
        ops = trace.op
        assert (ops == OpClass.LOAD).any() or (ops == OpClass.STORE).any(), bench.key
        assert (ops == OpClass.BRANCH).any(), bench.key


def test_interval_counts_are_positive_and_varied():
    counts = [b.n_intervals for b in all_benchmarks()]
    assert min(counts) >= 1
    # Table 3's defining property: lengths span orders of magnitude.
    assert max(counts) / max(1, min(counts)) > 1000
