"""Tests for the suite registry."""

import pytest

from repro.suites import (
    DOMAIN_SPECIFIC_SUITES,
    GENERAL_PURPOSE_SUITES,
    SUITE_ORDER,
    all_benchmarks,
    all_suites,
    get_benchmark,
    get_suite,
)


def test_seven_suites_in_order():
    suites = all_suites()
    assert [s.name for s in suites] == list(SUITE_ORDER)


def test_77_benchmarks_total():
    assert len(all_benchmarks()) == 77


def test_suite_sizes_match_paper():
    sizes = {s.name: len(s) for s in all_suites()}
    assert sizes["BioPerf"] == 10
    assert sizes["BMW"] == 5
    assert sizes["SPECint2000"] == 12
    assert sizes["SPECfp2000"] == 14
    assert sizes["SPECint2006"] == 12
    assert sizes["SPECfp2006"] == 17
    assert sizes["MediaBenchII"] == 7


def test_suite_partition_covers_all():
    assert set(GENERAL_PURPOSE_SUITES) | set(DOMAIN_SPECIFIC_SUITES) == set(
        SUITE_ORDER
    ) - {"MediaBenchII"} | {"MediaBenchII"}
    assert not set(GENERAL_PURPOSE_SUITES) & set(DOMAIN_SPECIFIC_SUITES)


def test_benchmark_keys_unique():
    keys = [b.key for b in all_benchmarks()]
    assert len(set(keys)) == 77


def test_get_benchmark_lookup():
    b = get_benchmark("SPECint2006", "astar")
    assert b.name == "astar"
    assert b.suite == "SPECint2006"


def test_unknown_suite_raises():
    with pytest.raises(KeyError):
        get_suite("SPECint2099")


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        get_benchmark("BMW", "retina")


def test_seeds_are_distinct():
    seeds = [b.seed for b in all_benchmarks()]
    assert len(set(seeds)) == 77


def test_program_is_cached():
    b = get_benchmark("BMW", "face")
    assert b.program is b.program


def test_same_name_different_suite_distinct():
    a = get_benchmark("SPECint2000", "bzip2")
    b = get_benchmark("SPECint2006", "bzip2")
    assert a.seed != b.seed
    assert a.key != b.key
