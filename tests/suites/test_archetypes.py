"""Contract tests for the shared behaviour archetypes.

Archetypes model shared library code: they must be seed-fixed (every
caller gets a structurally identical kernel) while parameterized
archetypes must differ across parameterizations.
"""

import numpy as np
import pytest

from repro.suites import archetypes as arch
from repro.synth import BlendKernel, generator

FIXED_ARCHETYPES = [
    arch.video_motion_estimation,
    arch.video_entropy_decode,
    arch.video_deblock_filter,
    arch.image_dct,
    arch.image_filter,
    arch.wavelet_lifting,
    arch.eigen_image,
    arch.speech_frontend,
    arch.gaussian_scoring,
    arch.profile_hmm,
    arch.seq_scan,
    arch.seq_align,
    arch.compress_block,
    arch.script_engine,
]


@pytest.mark.parametrize("factory", FIXED_ARCHETYPES, ids=lambda f: f.__name__)
def test_archetype_is_seed_fixed(factory):
    a = factory()
    b = factory()
    rng_key = ("arch-test", factory.__name__)
    ta = a.generate(800, generator(*rng_key))
    tb = b.generate(800, generator(*rng_key))
    assert np.array_equal(ta.op, tb.op)
    assert np.array_equal(ta.addr, tb.addr)
    assert np.array_equal(ta.pc, tb.pc)
    assert np.array_equal(ta.taken, tb.taken)


@pytest.mark.parametrize("factory", FIXED_ARCHETYPES, ids=lambda f: f.__name__)
def test_archetype_traces_validate(factory):
    t = factory().generate(1000, generator("arch-valid", factory.__name__))
    t.validate()
    assert len(t) == 1000


def test_parameterized_archetypes_differ_by_parameters():
    # A larger linked structure spreads the permutation walk over a
    # bigger region, so pointer strides grow with the node count.
    small = arch.pointer_graph(nodes_k=16, entropy=0.2)
    large = arch.pointer_graph(nodes_k=1024, entropy=0.2)
    ts = small.generate(4000, generator("pg", 1))
    tl = large.generate(4000, generator("pg", 1))
    from repro.mica import measure_strides

    assert (
        measure_strides(ts)["stride_gl_le262144"]
        > measure_strides(tl)["stride_gl_le262144"]
    )


def test_parameterized_archetype_same_params_identical():
    a = arch.grid_stencil(grid_mb=32, points=5, trip=512)
    b = arch.grid_stencil(grid_mb=32, points=5, trip=512)
    ta = a.generate(500, generator("gs", 1))
    tb = b.generate(500, generator("gs", 1))
    assert np.array_equal(ta.addr, tb.addr)


def test_game_tree_entropy_changes_predictability():
    from repro.mica import measure_branch

    tame = arch.game_tree(entropy=0.1)
    wild = arch.game_tree(entropy=0.5)
    bt = measure_branch(tame.generate(5000, generator("gt", 1)), sample_branches=500)
    bw = measure_branch(wild.generate(5000, generator("gt", 1)), sample_branches=500)
    assert bw["ppm_gag_h12"] > bt["ppm_gag_h12"]


def test_blend_archetypes_are_blends():
    assert isinstance(arch.eigen_image(), BlendKernel)
    assert isinstance(arch.script_engine(), BlendKernel)
