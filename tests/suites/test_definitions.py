"""Behavioural tests for the 77 benchmark models.

These pin the domain intent of the suite definitions: every benchmark
generates valid deterministic intervals, Table 3 lengths are honoured,
and the cross-suite archetype sharing the paper relies on (hmmer pairs,
facerec/face, sphinx3/speak, h264ref/h264) is visible at the raw
feature level.
"""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.isa import OpClass
from repro.mica import characterize_interval
from repro.suites import all_benchmarks, get_benchmark

CFG = AnalysisConfig.tiny()

FP_OPS = (int(OpClass.FADD), int(OpClass.FMUL), int(OpClass.FDIV), int(OpClass.FSQRT))


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.key)
def test_benchmark_generates_valid_interval(bench):
    trace = bench.program.interval_trace(0, 400)
    trace.validate()
    assert len(trace) == 400


def test_interval_counts_match_table3_analog():
    expected = {
        ("BioPerf", "fasta"): 69931,
        ("BioPerf", "ce"): 4,
        ("SPECint2000", "mcf"): 59,
        ("SPECfp2006", "calculix"): 74592,
        ("MediaBenchII", "jpeg"): 2,
        ("BMW", "hand"): 10789,
    }
    for (suite, name), n in expected.items():
        assert get_benchmark(suite, name).n_intervals == n


def test_fp_suites_are_fp_heavy():
    for suite, name in (("SPECfp2000", "swim"), ("SPECfp2006", "lbm")):
        b = get_benchmark(suite, name)
        trace = b.program.interval_trace(0, 2000)
        assert np.isin(trace.op, FP_OPS).mean() > 0.15, (suite, name)


def test_int_suites_have_no_fp_in_core_phases():
    b = get_benchmark("SPECint2006", "sjeng")
    trace = b.program.interval_trace(0, 2000)
    assert not np.isin(trace.op, FP_OPS).any()


def _vector(bench, interval=0, n=3000):
    trace = bench.program.interval_trace(interval, n)
    return characterize_interval(trace, CFG)


def _normalized_distances(vectors):
    """Pairwise distances after z-scoring, like the real pipeline.

    Raw features span wildly different ranges (ILP reaches 256, mixes
    stay in [0, 1]); comparisons are only meaningful on a common scale.
    """
    from repro.stats import normalize, pairwise_distances

    return pairwise_distances(normalize(np.vstack(vectors)))


def test_hmmer_versions_share_an_archetype_phase():
    bio = get_benchmark("BioPerf", "hmmer")
    spec = get_benchmark("SPECint2006", "hmmer")
    # BioPerf hmmer: first 40% is the shared profile-HMM phase; its late
    # phase is the dissimilar full Viterbi.  Compare both to SPEC hmmer.
    late = bio.program.n_intervals - 1
    d = _normalized_distances(
        [_vector(bio, 0), _vector(spec, 0), _vector(bio, late)]
    )
    assert d[0, 1] < d[2, 1]


def test_face_recognition_pair_is_close():
    vecs = [
        _vector(get_benchmark("BMW", "face")),
        _vector(get_benchmark("SPECfp2000", "facerec")),
        _vector(get_benchmark("SPECint2006", "mcf")),
    ]
    d = _normalized_distances(vecs)
    assert d[0, 1] < d[0, 2]


def test_speech_pair_is_close():
    sphinx = get_benchmark("SPECfp2006", "sphinx3")
    # speak starts with the front-end; sphinx3 ends with it.
    late = sphinx.program.n_intervals - 1
    vecs = [
        _vector(get_benchmark("BMW", "speak"), 0),
        _vector(sphinx, late),
        _vector(get_benchmark("BioPerf", "grappa"), 0),
    ]
    d = _normalized_distances(vecs)
    assert d[0, 1] < d[0, 2]


def test_h264_pair_is_close():
    vecs = [
        _vector(get_benchmark("MediaBenchII", "h264"), 0),
        _vector(get_benchmark("SPECint2006", "h264ref"), 0),
        _vector(get_benchmark("SPECfp2006", "lbm"), 0),
    ]
    d = _normalized_distances(vecs)
    assert d[0, 1] < d[0, 2]


def test_homogeneous_benchmarks_have_stable_intervals():
    for suite, name in (
        ("SPECint2006", "sjeng"),
        ("SPECfp2006", "lbm"),
        ("SPECfp2000", "sixtrack"),
    ):
        b = get_benchmark(suite, name)
        first = _vector(b, 0)
        mid = _vector(b, b.n_intervals // 2)
        last = _vector(b, b.n_intervals - 1)
        spread = np.vstack([first, mid, last]).std(axis=0)
        # Every characteristic is near-constant across the run, up to
        # sampling noise (fractions drift by a point or two).
        mix_like = spread[:20]
        assert mix_like.max() < 0.05, (suite, name)


def test_astar_phases_differ():
    astar = get_benchmark("SPECint2006", "astar")
    early = _vector(astar, 0)   # open-list search phase
    late = _vector(astar, astar.n_intervals - 1)  # graph phase
    baseline_noise = np.abs(_vector(astar, 0, n=3000) - _vector(astar, 1, n=3000))
    assert np.abs(early - late).max() > 5 * max(baseline_noise.max(), 1e-3)


def test_grappa_is_far_from_spec_int():
    vecs = [
        _vector(get_benchmark("BioPerf", "grappa")),
        _vector(get_benchmark("SPECint2006", "gcc")),
        _vector(get_benchmark("SPECint2000", "bzip2")),
        _vector(get_benchmark("SPECint2000", "gzip")),
    ]
    d = _normalized_distances(vecs)
    # grappa sits apart from all of them, further than they sit from
    # each other on average.
    grappa_min = min(d[0, 1], d[0, 2], d[0, 3])
    spec_mean = (d[1, 2] + d[1, 3] + d[2, 3]) / 3
    assert grappa_min > 0.5 * spec_mean
