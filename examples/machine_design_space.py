#!/usr/bin/env python3
"""Explore a machine design space with one characterization.

Because the workload characterization is microarchitecture-independent,
one clustering serves every candidate machine: the per-cluster
representatives are simulated on each design point and every
benchmark's CPI reconstructed from the same weights.  This example
ranks three machines per suite — the methodology's intended use in
early design-space exploration.

Run:
    python examples/machine_design_space.py
"""

from collections import defaultdict

from repro import AnalysisConfig, build_dataset, run_characterization
from repro.analysis import PhaseBasedSimulation
from repro.io import format_table
from repro.suites import get_benchmark
from repro.uarch import CacheConfig, MachineConfig

BENCHMARKS = (
    ("SPECint2006", "astar"),
    ("SPECint2006", "sjeng"),
    ("SPECfp2006", "lbm"),
    ("BioPerf", "fasta"),
    ("MediaBenchII", "mpeg2"),
    ("BMW", "finger"),
)

MACHINES = (
    MachineConfig(
        name="little",
        width=2,
        window=32,
        l1d=CacheConfig(8 * 1024, 64, 2),
        l2=CacheConfig(64 * 1024, 64, 4),
        l1i=CacheConfig(8 * 1024, 64, 2),
        predictor="bimodal",
        l2_penalty=60,
    ),
    MachineConfig(name="mid"),
    MachineConfig(
        name="big",
        width=8,
        window=256,
        l1d=CacheConfig(64 * 1024, 64, 8),
        l2=CacheConfig(1024 * 1024, 64, 16),
        l1i=CacheConfig(64 * 1024, 64, 8),
        l2_penalty=200,
    ),
)


def main() -> None:
    config = AnalysisConfig.small().replace(
        intervals_per_benchmark=20, n_clusters=24, n_prominent=16
    )
    benches = [get_benchmark(s, n) for s, n in BENCHMARKS]
    print(f"characterizing {len(benches)} benchmarks once...")
    dataset = build_dataset(benches, config)
    result = run_characterization(dataset, config, select_key=False)

    ipc = defaultdict(dict)
    for machine in MACHINES:
        sim = PhaseBasedSimulation(result, config, machine)
        for suite, name in BENCHMARKS:
            ipc[f"{suite}/{name}"][machine.name] = 1.0 / sim.benchmark_cpi(suite, name)

    rows = []
    for key, per_machine in ipc.items():
        best = max(per_machine, key=per_machine.get)
        rows.append(
            [key]
            + [f"{per_machine[m.name]:.2f}" for m in MACHINES]
            + [best]
        )
    headers = ["benchmark"] + [f"IPC {m.name}" for m in MACHINES] + ["best"]
    print(format_table(headers, rows))
    print(
        "\none characterization, three machines: only the cluster"
        "\nrepresentatives were ever simulated on each design point."
    )


if __name__ == "__main__":
    main()
