#!/usr/bin/env python3
"""Compare all five benchmark suites — the paper's section 5 in one run.

Characterizes all 77 benchmarks at small scale and prints the coverage
(Figure 4), diversity (Figure 5) and uniqueness (Figure 6) analyses as
terminal charts.  The benchmark harness under benchmarks/ runs the same
analyses at paper scale.

Run:
    python examples/compare_suites.py
"""

from repro import AnalysisConfig, all_benchmarks, build_dataset, run_characterization
from repro.analysis import (
    clusters_to_cover,
    cumulative_coverage,
    suite_coverage,
    suite_uniqueness,
)
from repro.suites import SUITE_ORDER
from repro.viz import ascii_bar_chart, ascii_curve_table


def main() -> None:
    config = AnalysisConfig.small()
    print("characterizing all 77 benchmarks (about half a minute)...")
    dataset = build_dataset(all_benchmarks(), config)
    result = run_characterization(dataset, config, select_key=False)

    coverage = suite_coverage(dataset, result.clustering, suites=SUITE_ORDER)
    print("\n== workload-space coverage per suite (Figure 4) ==")
    print("\n".join(ascii_bar_chart({s: float(c) for s, c in coverage.items()})))

    curves = cumulative_coverage(dataset, result.clustering, suites=SUITE_ORDER)
    print("\n== cumulative coverage vs. number of clusters (Figure 5) ==")
    print("\n".join(ascii_curve_table(curves, [1, 2, 5, 10, 20, 40])))
    print("\nclusters needed to cover 90% of each suite:")
    need = {s: float(clusters_to_cover(curves[s], 0.9)) for s in SUITE_ORDER}
    print("\n".join(ascii_bar_chart(need)))

    uniqueness = suite_uniqueness(dataset, result.clustering, suites=SUITE_ORDER)
    print("\n== fraction of unique behaviour per suite (Figure 6) ==")
    print(
        "\n".join(
            ascii_bar_chart(
                {s: 100 * u for s, u in uniqueness.items()}, fmt="{:.0f}%"
            )
        )
    )

    print(
        "\nreading: the general-purpose SPEC suites cover the most clusters;"
        "\nthe domain-specific suites saturate with few clusters; BioPerf"
        "\nexhibits by far the largest fraction of unique behaviour."
    )


if __name__ == "__main__":
    main()
