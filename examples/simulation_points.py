#!/usr/bin/env python3
"""Phase-based simulation points in action (paper section 5.3).

Characterizes a cross-suite benchmark set, selects one representative
interval per cluster, simulates only those on a concrete machine model,
and reconstructs each benchmark's CPI — comparing against brute-force
simulation of every sampled interval.

Run:
    python examples/simulation_points.py
"""

from repro import AnalysisConfig, build_dataset, run_characterization
from repro.analysis import PhaseBasedSimulation, random_interval_baseline
from repro.io import format_table
from repro.suites import get_benchmark
from repro.uarch import CacheConfig, MachineConfig

BENCHMARKS = (
    ("SPECint2006", "astar"),
    ("SPECint2006", "mcf"),
    ("SPECfp2006", "lbm"),
    ("SPECfp2000", "swim"),
    ("BioPerf", "hmmer"),
    ("MediaBenchII", "h264"),
)


def main() -> None:
    # Fewer clusters than the paper-scale default: with 6 benchmarks the
    # clustering must be coarse for representative sharing to pay off.
    config = AnalysisConfig.small().replace(
        intervals_per_benchmark=24, n_clusters=16, n_prominent=12
    )
    benches = [get_benchmark(s, n) for s, n in BENCHMARKS]
    print(f"characterizing {len(benches)} benchmarks...")
    dataset = build_dataset(benches, config)
    result = run_characterization(dataset, config, select_key=False)

    machine = MachineConfig(
        name="4-wide, 16KB L1, 256KB L2, gshare",
        l1d=CacheConfig(16 * 1024, 64, 4),
    )
    sim = PhaseBasedSimulation(result, config, machine)

    rows = []
    for suite, name in BENCHMARKS:
        true_cpi = sim.true_benchmark_cpi(suite, name)
        est = sim.benchmark_cpi(suite, name)
        single = random_interval_baseline(sim, suite, name, seed=1)
        rows.append(
            [
                f"{suite}/{name}",
                f"{true_cpi:.2f}",
                f"{est:.2f}",
                f"{100 * abs(est - true_cpi) / true_cpi:.1f}%",
                f"{100 * abs(single - true_cpi) / true_cpi:.1f}%",
            ]
        )
    print(
        format_table(
            ["benchmark", "true CPI", "phase-based", "error", "1-interval error"],
            rows,
        )
    )
    print(
        f"\nsimulated {sim.simulated_representatives} cluster representatives"
        f" instead of {len(dataset)} intervals"
        f" ({sim.reduction_factor():.0f}x less simulation)"
    )


if __name__ == "__main__":
    main()
