#!/usr/bin/env python3
"""Evaluate a *new* benchmark suite against SPEC — the methodology's
intended downstream use.

The paper's closing argument is that this pipeline tells you whether an
emerging suite adds behaviours worth simulating.  This example defines
a small fictional "EdgeAI" suite from the kernel substrate, runs it
against SPEC CPU2006, and reports whether it brings unique behaviour.

Run:
    python examples/custom_suite.py
"""

from repro import AnalysisConfig, build_dataset, run_characterization
from repro.analysis import suite_coverage, suite_uniqueness
from repro.io import format_table
from repro.suites import get_suite
from repro.suites.registry import Benchmark
from repro.synth import (
    Phase,
    PhaseSchedule,
    dsp_kernel,
    matrix_kernel,
    pointer_chase_kernel,
    sparse_kernel,
)

# A new suite is just benchmarks with phase schedules over kernels.
# Note: ad-hoc suites reuse an existing suite label ("MediaBenchII" is
# unused here) only for registry validation; we tag rows by name.


def _conv_net(seed):
    """Quantized convolution inference: int MACs over tensor tiles."""
    return PhaseSchedule(
        [
            Phase(
                dsp_kernel(
                    seed=seed + 1,
                    name="edgeai_conv",
                    taps=9,
                    fp=False,
                    sample_stride=1,
                    buffer_kb=512,
                    accumulators=8,
                    saturate=True,
                    trip=256,
                ),
                0.7,
            ),
            Phase(
                matrix_kernel(
                    seed=seed + 2,
                    name="edgeai_fc",
                    matrix_kb=256,
                    row_bytes=1024,
                    accumulators=6,
                    macs_per_iter=8,
                    trip=128,
                ),
                0.3,
            ),
        ]
    )


def _graph_embed(seed):
    """Graph-embedding lookups: pointer chasing plus sparse FP."""
    return PhaseSchedule(
        [
            Phase(
                pointer_chase_kernel(
                    seed=seed + 1,
                    name="edgeai_walk",
                    n_nodes=1 << 16,
                    branch_entropy=0.35,
                    trip=64,
                ),
                0.5,
            ),
            Phase(
                sparse_kernel(
                    seed=seed + 2,
                    name="edgeai_embed",
                    data_mb=24,
                    fp_per_element=7,
                    trip=256,
                ),
                0.5,
            ),
        ]
    )


def main() -> None:
    config = AnalysisConfig.small()
    custom = [
        Benchmark("MediaBenchII", "edgeai-conv", 500, _conv_net),
        Benchmark("MediaBenchII", "edgeai-graph", 500, _graph_embed),
    ]
    spec = list(get_suite("SPECint2006").benchmarks) + list(
        get_suite("SPECfp2006").benchmarks
    )
    print(f"characterizing {len(custom)} custom + {len(spec)} SPEC benchmarks...")
    dataset = build_dataset(custom + spec, config)
    result = run_characterization(dataset, config, select_key=False)

    coverage = suite_coverage(dataset, result.clustering)
    uniqueness = suite_uniqueness(dataset, result.clustering)
    rows = [
        [suite, coverage[suite], f"{100 * uniqueness[suite]:.0f}%"]
        for suite in dataset.suite_names()
    ]
    print(format_table(["suite", "clusters", "unique"], rows))
    verdict = (
        "adds behaviours SPEC does not cover - worth simulating"
        if uniqueness["MediaBenchII"] > 0.2
        else "largely redundant with SPEC CPU2006"
    )
    print(f"\nverdict on the custom suite: {verdict}")


if __name__ == "__main__":
    main()
