#!/usr/bin/env python3
"""Quickstart: characterize two benchmark suites and compare them.

Runs the full methodology — MICA featurization, interval sampling, PCA,
BIC-scored k-means, prominent-phase selection, and GA key-characteristic
selection — over BioPerf and MediaBench II at a small scale, then prints
what the paper's analyses would say about them.

Run:
    python examples/quickstart.py
"""

from repro import AnalysisConfig, build_dataset, run_characterization
from repro.analysis import suite_coverage, suite_uniqueness
from repro.io import format_table
from repro.mica import FEATURE_CATEGORY
from repro.suites import get_suite


def main() -> None:
    config = AnalysisConfig.small()
    benchmarks = list(get_suite("BioPerf").benchmarks) + list(
        get_suite("MediaBenchII").benchmarks
    )
    print(f"characterizing {len(benchmarks)} benchmarks "
          f"({config.intervals_per_benchmark} intervals each, "
          f"{config.interval_instructions} instructions per interval)...")
    dataset = build_dataset(benchmarks, config)
    result = run_characterization(dataset, config)

    print(f"\nretained {result.n_components} principal components "
          f"explaining {100 * result.explained_variance:.1f}% of variance")
    print(f"{len(result.prominent)} prominent phases cover "
          f"{100 * result.prominent.coverage:.1f}% of the sampled execution")

    print("\nGA-selected key characteristics "
          f"(distance correlation {result.ga_result.fitness:.2f}):")
    rows = [
        [name, FEATURE_CATEGORY[name]] for name in result.key_characteristics
    ]
    print(format_table(["characteristic", "category"], rows))

    coverage = suite_coverage(dataset, result.clustering)
    uniqueness = suite_uniqueness(dataset, result.clustering)
    print("\nsuite comparison:")
    rows = [
        [suite, coverage[suite], f"{100 * uniqueness[suite]:.0f}%"]
        for suite in dataset.suite_names()
    ]
    print(format_table(["suite", "clusters touched", "unique behaviour"], rows))


if __name__ == "__main__":
    main()
