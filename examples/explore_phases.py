#!/usr/bin/env python3
"""Explore phase-level behaviour of individual benchmarks (section 4.2).

Reproduces the paper's per-benchmark observations at small scale:

* astar splits across two distinct prominent phase behaviours;
* the BioPerf and SPEC CPU2006 versions of hmmer share a cluster while
  BioPerf's keeps a large phase of its own;
* sjeng / lbm are near-homogeneous.

Also renders the Figure 2/3 kiviat pages as SVG files.

Run:
    python examples/explore_phases.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import AnalysisConfig, all_benchmarks, build_dataset, run_characterization
from repro.analysis import (
    ascii_timeline,
    benchmark_profile,
    homogeneity,
    shared_clusters,
)
from repro.mica import FEATURE_INDEX
from repro.viz import ascii_kiviat, build_kiviat_scale, render_prominent_phase_pages


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("phase_report")
    config = AnalysisConfig.small()
    print("characterizing all 77 benchmarks (about half a minute)...")
    dataset = build_dataset(all_benchmarks(), config)
    result = run_characterization(dataset, config)

    print("\n== astar's phase split ==")
    profile = benchmark_profile(result, "SPECint2006", "astar")
    for cluster, fraction in profile.cluster_fractions[:4]:
        print(f"  cluster {cluster}: {100 * fraction:.1f}% of astar")

    print("\n== the two hmmer versions ==")
    shared = shared_clusters(result, ("BioPerf", "hmmer"), ("SPECint2006", "hmmer"))
    print(f"  shared clusters: {shared}")
    bio = benchmark_profile(result, "BioPerf", "hmmer")
    own = [c for c, f in bio.cluster_fractions if c not in shared and f > 0.1]
    print(f"  BioPerf-hmmer keeps its own major clusters: {own}")

    print("\n== homogeneity (fraction in the heaviest cluster) ==")
    for suite, name in (
        ("SPECint2006", "sjeng"),
        ("SPECfp2006", "lbm"),
        ("SPECfp2000", "sixtrack"),
        ("SPECint2006", "astar"),
    ):
        print(f"  {suite}/{name}: {100 * homogeneity(result, suite, name):.1f}%")

    print("\n== phase timelines (one letter per sampled interval) ==")
    for suite, name in (
        ("SPECint2006", "astar"),
        ("SPECfp2006", "wrf"),
        ("SPECfp2006", "lbm"),
    ):
        for line in ascii_timeline(result, suite, name, width=48):
            print("  " + line)
        print()

    print("== heaviest prominent phase, as a kiviat (text form) ==")
    scale = build_kiviat_scale(result)
    idx = [FEATURE_INDEX[n] for n in result.key_characteristics]
    values = result.prominent_matrix[0][idx]
    print("  weight: %.2f%%" % (100 * result.prominent.weights[0]))
    for line in ascii_kiviat(np.asarray(values), scale):
        print("  " + line)

    pages = render_prominent_phase_pages(result, output_dir)
    print(f"\nwrote {len(pages)} SVG pages (Figures 2-3 analog) to {output_dir}/")


if __name__ == "__main__":
    main()
